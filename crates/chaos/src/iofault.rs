//! Seeded I/O fault catalog for the checkpoint layer.
//!
//! Where [`crate::InjectionPlan`] corrupts *datasets*, an [`IoFaultPlan`]
//! corrupts *storage operations*: the transient `EIO`/`ENOSPC` blips, torn
//! writes and mid-run process kills surveyed in large-scale storage-failure
//! studies (see PAPERS.md). The plan is consumed by `dcfail-ckpt`'s
//! `ChaosFs`, which asks [`IoFaultInjector::decide`] before every filesystem
//! call it forwards.
//!
//! Determinism contract: decisions are a pure function of `(plan, op
//! index)`. Every transient draw and every torn-write truncation point comes
//! from a `StreamRng` forked on the operation index, so the same plan
//! replayed over the same operation sequence injects the same faults — the
//! crash-matrix harness in `repro crashtest` depends on this to make
//! kill-at-op-K sweeps reproducible.

use dcfail_stats::rng::StreamRng;

/// The storage-fault shapes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Transient read/write error (`EIO`-shaped): the operation fails but
    /// retrying it may succeed. Absorbed by the ckpt retry policy.
    TransientEio,
    /// Transient out-of-space error (`ENOSPC`-shaped): same retry semantics,
    /// distinct label so retry counters can tell the shapes apart.
    TransientEnospc,
    /// The process dies at this operation. If the operation was a write, the
    /// file may be left torn: truncated at a byte offset chosen by the plan.
    Kill {
        /// For writes: keep only this many payload bytes on disk before
        /// dying (`None` = nothing reaches the disk at all).
        torn_keep_bytes: Option<usize>,
    },
}

impl IoFault {
    /// Stable short code for logs and counters.
    pub fn code(&self) -> &'static str {
        match self {
            IoFault::TransientEio => "EIO",
            IoFault::TransientEnospc => "ENOSPC",
            IoFault::Kill { .. } => "KILL",
        }
    }
}

/// A seeded schedule of I/O faults.
///
/// `transient_rate` is the per-operation probability of a transient error;
/// `kill_at_op` hard-kills the run at the given 0-based operation index; and
/// `torn_writes` controls whether a kill landing on a write leaves a
/// truncated file behind (the truncation point is drawn from the seed).
#[derive(Debug, Clone, PartialEq)]
pub struct IoFaultPlan {
    /// Root seed every fault draw forks from.
    pub seed: u64,
    /// Per-operation transient-failure probability in `[0, 1]`.
    pub transient_rate: f64,
    /// 0-based index of the operation at which the run is hard-killed.
    pub kill_at_op: Option<u64>,
    /// Whether a kill on a write leaves a torn (truncated) file.
    pub torn_writes: bool,
}

impl IoFaultPlan {
    /// A plan that never injects anything — the identity schedule.
    pub fn quiet(seed: u64) -> Self {
        IoFaultPlan {
            seed,
            transient_rate: 0.0,
            kill_at_op: None,
            torn_writes: false,
        }
    }

    /// A plan injecting transient errors at `rate` per operation.
    pub fn transient(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "transient rate must be within [0, 1], got {rate}"
        );
        IoFaultPlan {
            seed,
            transient_rate: rate,
            kill_at_op: None,
            torn_writes: false,
        }
    }

    /// A plan that hard-kills the run at operation `op` (0-based), leaving a
    /// torn file behind when the fatal operation is a write.
    pub fn kill_at(seed: u64, op: u64) -> Self {
        IoFaultPlan {
            seed,
            transient_rate: 0.0,
            kill_at_op: Some(op),
            torn_writes: true,
        }
    }
}

/// Stateful per-run injector: counts operations and answers, for each one,
/// whether a fault fires. One injector per (attempted) process lifetime.
#[derive(Debug)]
pub struct IoFaultInjector {
    plan: IoFaultPlan,
    rng: StreamRng,
    next_op: u64,
    killed: bool,
    transients: u64,
}

impl IoFaultInjector {
    /// A fresh injector at operation index 0.
    pub fn new(plan: IoFaultPlan) -> Self {
        let rng = StreamRng::new(plan.seed).fork("chaos.io");
        IoFaultInjector {
            plan,
            rng,
            next_op: 0,
            killed: false,
            transients: 0,
        }
    }

    /// Decides the fate of the next operation and advances the op counter.
    ///
    /// `write_len` is `Some(payload length)` for write operations — the only
    /// ones a torn-write kill can truncate. Once a kill fires, every later
    /// operation also reports a kill: a dead process performs no more I/O.
    pub fn decide(&mut self, write_len: Option<usize>) -> Option<IoFault> {
        let op = self.next_op;
        self.next_op += 1;
        if self.killed || self.plan.kill_at_op == Some(op) {
            self.killed = true;
            let torn_keep_bytes = match write_len {
                Some(len) if self.plan.torn_writes && len > 0 => {
                    // Truncate strictly inside the payload so the segment is
                    // genuinely torn, never accidentally complete.
                    Some(self.rng.fork_index("torn", op).below(len))
                }
                _ => None,
            };
            return Some(IoFault::Kill { torn_keep_bytes });
        }
        if self.plan.transient_rate > 0.0 {
            let mut draw = self.rng.fork_index("transient", op);
            if draw.bernoulli(self.plan.transient_rate) {
                self.transients += 1;
                // Alternate deterministically between the two transient
                // shapes so both retry paths get exercised.
                return Some(if draw.bernoulli(0.5) {
                    IoFault::TransientEnospc
                } else {
                    IoFault::TransientEio
                });
            }
        }
        None
    }

    /// Operations decided so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.next_op
    }

    /// Transient faults injected so far.
    pub fn transients(&self) -> u64 {
        self.transients
    }

    /// Whether the kill already fired.
    pub fn killed(&self) -> bool {
        self.killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_faults() {
        let mut inj = IoFaultInjector::new(IoFaultPlan::quiet(42));
        for _ in 0..1000 {
            assert_eq!(inj.decide(Some(64)), None);
        }
        assert_eq!(inj.ops(), 1000);
        assert!(!inj.killed());
    }

    #[test]
    fn decisions_are_reproducible() {
        let plan = IoFaultPlan::transient(7, 0.3);
        let mut a = IoFaultInjector::new(plan.clone());
        let mut b = IoFaultInjector::new(plan);
        for i in 0..500 {
            let len = if i % 3 == 0 { Some(i) } else { None };
            assert_eq!(a.decide(len), b.decide(len));
        }
        assert!(a.transients() > 0, "rate 0.3 over 500 ops must fire");
        assert_eq!(a.transients(), b.transients());
    }

    #[test]
    fn kill_fires_exactly_at_op_and_sticks() {
        let mut inj = IoFaultInjector::new(IoFaultPlan::kill_at(9, 3));
        assert_eq!(inj.decide(None), None);
        assert_eq!(inj.decide(Some(10)), None);
        assert_eq!(inj.decide(None), None);
        let fault = inj.decide(Some(100)).expect("op 3 must kill");
        let IoFault::Kill { torn_keep_bytes } = fault else {
            panic!("expected kill, got {fault:?}");
        };
        let torn = torn_keep_bytes.expect("torn write on a killed write op");
        assert!(torn < 100, "truncation point must be inside the payload");
        // The process is dead: every subsequent op is also a kill, and a
        // non-write kill carries no torn bytes.
        assert!(matches!(
            inj.decide(None),
            Some(IoFault::Kill {
                torn_keep_bytes: None
            })
        ));
        assert!(inj.killed());
    }

    #[test]
    fn transient_shapes_both_occur() {
        let mut inj = IoFaultInjector::new(IoFaultPlan::transient(11, 0.9));
        let mut eio = 0;
        let mut enospc = 0;
        for _ in 0..200 {
            match inj.decide(None) {
                Some(IoFault::TransientEio) => eio += 1,
                Some(IoFault::TransientEnospc) => enospc += 1,
                _ => {}
            }
        }
        assert!(eio > 0 && enospc > 0, "eio={eio} enospc={enospc}");
    }

    #[test]
    #[should_panic(expected = "transient rate must be within")]
    fn transient_rate_is_validated() {
        let _ = IoFaultPlan::transient(1, 1.5);
    }
}
