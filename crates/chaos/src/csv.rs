//! Text-level corruption of CSV traces.
//!
//! The dataset-level injector in [`crate::inject`] produces defects the audit
//! catalog can name; this module produces the rawer kind — rows cut off
//! mid-write, fields lost or overwritten by export bugs — that a lenient CSV
//! parser has to skip before the dataset even exists.

use crate::plan::InjectionPlan;
use dcfail_stats::rng::StreamRng;

/// Garbles data rows of a CSV trace according to `plan.rates.garble_csv_row`.
///
/// The header line and blank lines are never touched. Each data row is hit
/// independently with the configured probability; a hit row is truncated at a
/// random point, loses a random field, gets one field overwritten with junk,
/// or gains a stray trailing field. Returns the corrupted text and the number
/// of garbled rows. Deterministic in `plan.seed`.
pub fn garble_csv(csv: &str, plan: &InjectionPlan) -> (String, usize) {
    let rate = plan.rates.garble_csv_row;
    let mut rng = StreamRng::new(plan.seed).fork("chaos").fork("garble-csv");
    let mut garbled = 0usize;
    let mut out = String::with_capacity(csv.len());
    for (i, line) in csv.lines().enumerate() {
        let mangled = if i == 0 || line.trim().is_empty() || rate <= 0.0 || !rng.bernoulli(rate) {
            line.to_string()
        } else {
            garbled += 1;
            mangle_line(line, &mut rng)
        };
        out.push_str(&mangled);
        out.push('\n');
    }
    if !csv.ends_with('\n') && out.ends_with('\n') {
        out.pop();
    }
    (out, garbled)
}

/// Applies one of the four row-level mutilations.
fn mangle_line(line: &str, rng: &mut StreamRng) -> String {
    let chars: Vec<char> = line.chars().collect();
    match rng.below(4) {
        // Truncated mid-write: keep a strict prefix.
        0 => chars[..rng.below(chars.len().max(1))].iter().collect(),
        // A field is lost.
        1 => {
            let mut fields: Vec<&str> = line.split(',').collect();
            if fields.len() > 1 {
                let victim = rng.below(fields.len());
                fields.remove(victim);
            }
            fields.join(",")
        }
        // A field is overwritten with junk.
        2 => {
            let mut fields: Vec<String> = line.split(',').map(str::to_string).collect();
            let victim = rng.below(fields.len());
            fields[victim] = "??".to_string();
            fields.join(",")
        }
        // A stray trailing field appears.
        _ => format!("{line},###"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Corruption, InjectionPlan};

    const TRACE: &str = "machine,incident,at_minutes,class,repair_minutes\n\
                         0,0,1440,HW,60\n\
                         1,1,2880,SW,120\n\
                         0,2,4320,Net,30\n";

    #[test]
    fn zero_rate_is_identity() {
        let (out, n) = garble_csv(TRACE, &InjectionPlan::new(1));
        assert_eq!(out, TRACE);
        assert_eq!(n, 0);
    }

    #[test]
    fn header_survives_full_rate() {
        let plan = InjectionPlan::new(3).with(Corruption::GarbleCsvRow, 1.0);
        let (out, n) = garble_csv(TRACE, &plan);
        assert_eq!(n, 3);
        assert!(out.starts_with("machine,incident,at_minutes,class,repair_minutes\n"));
        assert_ne!(out, TRACE);
    }

    #[test]
    fn garbling_is_deterministic() {
        let plan = InjectionPlan::new(9).with(Corruption::GarbleCsvRow, 0.7);
        let a = garble_csv(TRACE, &plan);
        let b = garble_csv(TRACE, &plan);
        assert_eq!(a, b);
        let c = garble_csv(
            TRACE,
            &InjectionPlan::new(10).with(Corruption::GarbleCsvRow, 0.7),
        );
        // A different seed garbles different rows (or the same rows
        // differently); counts may coincide but the text should not.
        assert!(c.0 != a.0 || c.1 != a.1);
    }

    #[test]
    fn missing_trailing_newline_preserved() {
        let no_newline = TRACE.trim_end();
        let (out, _) = garble_csv(no_newline, &InjectionPlan::new(1));
        assert!(!out.ends_with('\n'));
        assert_eq!(out, no_newline);
    }
}
