//! The robustness harness: chaos → recover → analyze must never panic, must
//! re-audit clean, and at bounded corruption rates must stay within tolerance
//! of the clean ground truth.

#![allow(clippy::unwrap_used)]

use dcfail_audit::import;
use dcfail_audit::recover::recover_raw;
use dcfail_audit::{RawDatasetParts, RecoveryMode};
use dcfail_chaos::{garble_csv, inject, inject_json, Corruption, InjectionPlan};
use dcfail_core::{degradation, rates, repair};
use dcfail_model::interop;
use dcfail_model::prelude::*;
use dcfail_synth::Scenario;
use proptest::prelude::*;

fn clean_dataset(seed: u64, scale: f64) -> FailureDataset {
    Scenario::paper()
        .seed(seed)
        .scale(scale)
        .build()
        .into_dataset()
}

/// Runs every headline estimator in robust mode; panics are test failures.
fn analyze_never_panics(dataset: &FailureDataset) {
    let _ = degradation::weekly_failure_rates_robust(dataset);
    for kind in [MachineKind::Pm, MachineKind::Vm] {
        let _ = degradation::interfailure_robust(dataset, kind);
        let _ = degradation::repair_robust(dataset, kind);
        let _ = rates::mtbf_days(dataset, kind);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed, any rate from 0 to 100%, any single corruption or all at
    /// once: lenient ingest never panics and the recovered dataset re-audits
    /// with zero Error-level findings.
    #[test]
    fn chaos_recover_analyze_never_panics(
        seed in 0u64..1_000_000,
        rate_pct in 0u8..=100u8,
        focus in 0usize..10,
    ) {
        let clean = clean_dataset(seed % 7, 0.02);
        let rate = f64::from(rate_pct) / 100.0;
        let plan = if focus == Corruption::ALL.len() {
            InjectionPlan::uniform(seed, rate)
        } else {
            InjectionPlan::new(seed).with(Corruption::ALL[focus], rate)
        };
        let (parts, _log) = inject(&clean, &plan);
        let recovered = recover_raw(&parts);
        prop_assert!(recovered.is_ok(), "recovery failed: {}", recovered.unwrap_err());
        let recovered = recovered.unwrap();
        let report = dcfail_audit::audit_dataset(&recovered.dataset);
        prop_assert!(
            report.is_clean(),
            "recovered dataset re-audits dirty (seed {seed}, rate {rate}, focus {focus}):\n{}",
            report.render_text()
        );
        analyze_never_panics(&recovered.dataset);
    }

    /// Garbled CSV at any rate: the lenient import path always yields an
    /// audit-clean dataset instead of an error.
    #[test]
    fn garbled_csv_lenient_import_never_fails(
        seed in 0u64..1_000_000,
        rate_pct in 0u8..=100u8,
    ) {
        let clean = clean_dataset(3, 0.02);
        let machines_csv = interop::machines_to_csv(&clean);
        let events_csv = interop::events_to_csv(&clean);
        let rate = f64::from(rate_pct) / 100.0;
        let plan = InjectionPlan::new(seed).with(Corruption::GarbleCsvRow, rate);
        let (dirty_machines, _) = garble_csv(&machines_csv, &plan);
        let (dirty_events, _) = garble_csv(&events_csv, &plan);
        let imported = import::dataset_from_csv_with(
            &dirty_machines,
            &dirty_events,
            clean.horizon(),
            RecoveryMode::Lenient,
        );
        prop_assert!(imported.is_ok(), "lenient CSV import failed: {}", imported.unwrap_err());
        let (dataset, report, _degradation) = imported.unwrap();
        prop_assert!(
            report.is_clean(),
            "lenient CSV import re-audits dirty (seed {seed}, rate {rate}):\n{}",
            report.render_text()
        );
        analyze_never_panics(&dataset);
    }
}

#[test]
fn injection_and_recovery_are_deterministic() {
    let clean = clean_dataset(11, 0.05);
    let plan = InjectionPlan::uniform(42, 0.2);
    let (parts_a, log_a) = inject(&clean, &plan);
    let (parts_b, log_b) = inject(&clean, &plan);
    assert_eq!(log_a, log_b);
    assert!(log_a.total() > 0, "20% corruption must touch something");
    let a = recover_raw(&parts_a).expect("recovery succeeds");
    let b = recover_raw(&parts_b).expect("recovery succeeds");
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.report, b.report);
    assert!(!a.report.is_empty());
}

#[test]
fn strict_import_rejects_what_lenient_recovers() {
    let clean = clean_dataset(5, 0.05);
    let json = serde_json::to_string(&RawDatasetParts::from(&clean)).expect("serialize");
    // Orphaned placements are an Error-level defect the strict path must
    // refuse and the lenient path must repair.
    let plan = InjectionPlan::new(9).with(Corruption::OrphanPlacement, 0.5);
    let (dirty, log) = inject_json(&json, &plan).expect("injection succeeds");
    assert!(log.orphaned_vms > 0, "half the VMs should be orphaned");

    let strict = import::dataset_from_json(&dirty);
    assert!(matches!(strict, Err(import::ImportError::Rejected(_))));

    let (dataset, report, degradation) =
        import::dataset_from_json_with(&dirty, RecoveryMode::Lenient).expect("lenient succeeds");
    assert!(report.is_clean(), "{}", report.render_text());
    assert!(!degradation.is_empty());
    assert_eq!(dataset.machines().len(), clean.machines().len());
    assert_eq!(dataset.events().len(), clean.events().len());
}

#[test]
fn bounded_corruption_keeps_estimates_within_tolerance() {
    let clean = clean_dataset(7, 0.2);
    let plan = InjectionPlan::uniform(1234, 0.05);
    let (parts, log) = inject(&clean, &plan);
    assert!(log.total() > 0);
    let recovered = recover_raw(&parts).expect("recovery succeeds");
    assert!(dcfail_audit::audit_dataset(&recovered.dataset).is_clean());
    assert!(recovered.report.event_completeness() > 0.9);

    for kind in [MachineKind::Pm, MachineKind::Vm] {
        let clean_mtbf = rates::mtbf_days(&clean, kind).expect("clean MTBF");
        let rec_mtbf = rates::mtbf_days(&recovered.dataset, kind).expect("recovered MTBF");
        let mtbf_err = (rec_mtbf - clean_mtbf).abs() / clean_mtbf;
        assert!(
            mtbf_err < 0.10,
            "{kind}: MTBF drifted {:.1}% (clean {clean_mtbf:.1} d, recovered {rec_mtbf:.1} d)",
            mtbf_err * 100.0
        );

        let mean = |ds: &FailureDataset| {
            let hours = repair::repair_hours(ds, kind);
            hours.iter().sum::<f64>() / hours.len() as f64
        };
        let clean_repair = mean(&clean);
        let rec_repair = mean(&recovered.dataset);
        let repair_err = (rec_repair - clean_repair).abs() / clean_repair;
        assert!(
            repair_err < 0.10,
            "{kind}: mean repair drifted {:.1}% (clean {clean_repair:.1} h, recovered {rec_repair:.1} h)",
            repair_err * 100.0
        );
    }
}

#[test]
fn recovery_of_clean_dataset_is_identity_shaped() {
    let clean = clean_dataset(2, 0.03);
    let parts = RawDatasetParts::from(&clean);
    let recovered = recover_raw(&parts).expect("recovery succeeds");
    assert!(recovered.report.is_empty(), "{}", recovered.report);
    let rec = &recovered.dataset;
    assert_eq!(rec.horizon(), clean.horizon());
    assert_eq!(rec.machines(), clean.machines());
    assert_eq!(rec.topology(), clean.topology());
    assert_eq!(rec.incidents(), clean.incidents());
    assert_eq!(rec.tickets(), clean.tickets());
    assert_eq!(rec.events(), clean.events());
    assert_eq!(rec.telemetry(), clean.telemetry());
    assert_eq!(*rec, clean);
}
