//! The lint pass applied to the workspace that ships it.
//!
//! This is the same gate CI runs via `repro lint`: the tree at head must
//! carry zero Error-level findings and an empty baseline. Every tolerated
//! exception is an inline `dlint::allow` with a reason, not a baseline
//! entry.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_error_findings() {
    let report = dcfail_dlint::lint_workspace(&workspace_root()).expect("lint workspace");
    assert!(report.files_scanned > 50, "walker missed the tree");
    assert_eq!(
        report.error_count(),
        0,
        "determinism lint found errors:\n{}",
        report.render_text()
    );
}

#[test]
fn baseline_only_ever_shrinks() {
    // The baseline grandfathers nothing: the workspace went in clean, so any
    // new entry is a regression. This test is the ratchet — adding an entry
    // fails it, and stale entries already fire D12 in the main pass.
    let baseline =
        dcfail_dlint::Baseline::load(&workspace_root().join(dcfail_dlint::BASELINE_FILE))
            .expect("parse baseline");
    assert!(
        baseline.is_empty(),
        "dlint.baseline grew ({} entr{} forgiving {} finding(s)); fix the code or add an inline dlint::allow with a reason instead",
        baseline.entries.len(),
        if baseline.entries.len() == 1 { "y" } else { "ies" },
        baseline.total()
    );
}

#[test]
fn every_inline_suppression_carries_a_reason() {
    let report = dcfail_dlint::lint_workspace(&workspace_root()).expect("lint workspace");
    assert!(
        !report.report.has(dcfail_dlint::LintRule::D11),
        "suppression hygiene:\n{}",
        report.render_text()
    );
}
