// D05 suppressed twin.
pub fn jitter(items: &[u64], rng: &StreamRng) -> Vec<u64> {
    // dlint::allow(D05): StreamRng is immutable; draw forks a stream per item id
    dcfail_par::par_map(items, |_, item| item + draw(rng))
}
