// D06: bare float accumulation in an accumulator module.
pub fn total(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    for v in values {
        sum += *v as f64;
    }
    sum
}
