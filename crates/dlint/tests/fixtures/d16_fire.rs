//! D16 fixture: raw socket I/O in library code outside the serve
//! connection module.

pub fn dial_sideways() {
    let _ = std::net::TcpStream::connect("127.0.0.1:80");
}
