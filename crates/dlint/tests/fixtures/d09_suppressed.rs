// D09 suppressed twin.
pub fn announce(n: usize) {
    // dlint::allow(D09): one-shot migration warning; removed with the next schema bump
    println!("processed {n} records");
}
