// D15: a growable event backlog in stream library code.
pub struct Backlog {
    events: Vec<FeedEvent>,
}

impl Backlog {
    pub fn enqueue(&mut self, event: FeedEvent) {
        self.events.push(event);
    }
}
