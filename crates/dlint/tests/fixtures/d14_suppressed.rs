// D14 suppressed twin.
pub fn total_observable_transitions(logs: &[OnOffLog]) -> usize {
    let mut total = 0;
    for log in logs {
        // dlint::allow(D14): fixture stand-in for the one sanctioned bulk pass in telemetry
        total += log.samples_15min().len();
    }
    total
}
