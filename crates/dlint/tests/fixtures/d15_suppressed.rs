// D15 suppressed twin.
pub struct Backlog {
    events: Vec<FeedEvent>,
}

impl Backlog {
    pub fn enqueue(&mut self, event: FeedEvent) {
        // dlint::allow(D15): fixture stand-in for a bounded staging queue drained every watermark advance
        self.events.push(event);
    }
}
