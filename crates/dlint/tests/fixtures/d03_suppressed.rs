// D03 suppressed twin.
use std::time::Instant;

pub fn stamp() -> Instant {
    // dlint::allow(D03): debug-only timer behind a feature gate; never reaches output
    Instant::now()
}
