// D09: stdout from library code.
pub fn announce(n: usize) {
    println!("processed {n} records");
}
