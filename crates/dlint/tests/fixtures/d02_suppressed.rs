// D02 suppressed twin.
pub fn is_positive(x: f64) -> bool {
    // dlint::allow(D02): NaN must fail this validation; the None arm is the point
    x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
}
