// D04 suppressed twin.
pub fn verbosity() -> Option<String> {
    // dlint::allow(D04): read once at startup into explicit config; output-neutral
    std::env::var("DCFAIL_VERBOSE").ok()
}
