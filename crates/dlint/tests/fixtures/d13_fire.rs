// D13: direct filesystem mutation from library code.
pub fn persist(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
