// D01 suppressed twin: the same construct behind a justified allow.
// dlint::allow(D01): scratch map local to one call; never iterated, only probed
use std::collections::HashMap;

pub fn contains(keys: &[u32], probe: u32) -> bool {
    // dlint::allow(D01): membership probe only; iteration order never observed
    let h: HashMap<u32, ()> = keys.iter().map(|&k| (k, ())).collect();
    h.contains_key(&probe)
}
