// D13 suppressed twin.
pub fn persist(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    // dlint::allow(D13): sanctioned checkpoint write site; every other caller goes through FaultFs
    std::fs::write(path, bytes)
}
