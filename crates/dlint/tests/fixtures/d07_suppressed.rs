// D07 suppressed twin.
pub fn read(ptr: *const u32) -> u32 {
    // dlint::allow(D07): FFI shim audited in review; no aliasing possible here
    unsafe { *ptr }
}
