// D14: an O(window) telemetry scan called per machine in a loop.
pub fn total_observable_transitions(logs: &[OnOffLog]) -> usize {
    let mut total = 0;
    for log in logs {
        total += log.samples_15min().len();
    }
    total
}
