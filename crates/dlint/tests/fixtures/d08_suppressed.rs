// D08 suppressed twin.
pub struct DemoCounts(u64);

// dlint::allow(D08): law coverage lives in the sibling crate's shard equivalence suite
impl Mergeable for DemoCounts {
    type Output = u64;

    fn identity() -> Self {
        DemoCounts(0)
    }

    fn absorb(&mut self, other: &Self) {
        self.0 += other.0;
    }

    fn finalize(self) -> u64 {
        self.0
    }
}
