// D05: par closure capturing an RNG without forking it.
pub fn jitter(items: &[u64], rng: &StreamRng) -> Vec<u64> {
    dcfail_par::par_map(items, |_, item| item + draw(rng))
}
