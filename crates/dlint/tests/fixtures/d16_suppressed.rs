//! D16 twin: the same dial, justified inline.

pub fn dial_sideways() {
    // dlint::allow(D16): fixture models a sanctioned liveness probe
    let _ = std::net::TcpStream::connect("127.0.0.1:80");
}
