// D10: f32 in an estimator crate.
pub fn halve(x: f64) -> f32 {
    x as f32
}
