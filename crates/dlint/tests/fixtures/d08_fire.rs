// D08: a Mergeable impl with no absorb-law test anywhere in the corpus.
pub struct DemoCounts(u64);

impl Mergeable for DemoCounts {
    type Output = u64;

    fn identity() -> Self {
        DemoCounts(0)
    }

    fn absorb(&mut self, other: &Self) {
        self.0 += other.0;
    }

    fn finalize(self) -> u64 {
        self.0
    }
}
