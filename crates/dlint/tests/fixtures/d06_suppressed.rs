// D06 suppressed twin.
pub fn total(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    for v in values {
        // dlint::allow(D06): single-threaded path; order is fixed by the caller
        sum += *v as f64;
    }
    sum
}
