// D10 suppressed twin.
// dlint::allow(D10): wire format mandated by the upstream trace dump; widened on read
pub fn halve(x: f64) -> f32 { x as f32 }
