// D01: hash collections in a digest-bearing crate.
use std::collections::HashMap;

pub fn histogram(keys: &[u32]) -> HashMap<u32, usize> {
    let mut h = HashMap::new();
    for &k in keys {
        *h.entry(k).or_insert(0) += 1;
    }
    h
}
