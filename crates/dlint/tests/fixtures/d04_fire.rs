// D04: environment read outside the thread-resolution allowlist.
pub fn verbosity() -> Option<String> {
    std::env::var("DCFAIL_VERBOSE").ok()
}
