// D03: wall-clock read in an analysis crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
