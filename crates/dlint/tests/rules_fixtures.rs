//! Fixture-based rule tests: every token rule (D01–D10, D13–D16) has one minimal
//! source file that fires it and one suppressed twin that does not.
//!
//! The fixtures live under `tests/fixtures/` (excluded from the workspace
//! walk) and are linted via [`dcfail_dlint::lint_source`] under a virtual
//! path that puts them in the rule's scope — e.g. the D01 fixture pretends
//! to live in `crates/core/src/`, where hash collections are banned.

use dcfail_dlint::{lint_source, LintRule};

struct Case {
    rule: LintRule,
    /// Virtual path placing the fixture in the rule's scope.
    virtual_path: &'static str,
    fire: &'static str,
    suppressed: &'static str,
}

const CASES: &[Case] = &[
    Case {
        rule: LintRule::D01,
        virtual_path: "crates/core/src/fixture.rs",
        fire: include_str!("fixtures/d01_fire.rs"),
        suppressed: include_str!("fixtures/d01_suppressed.rs"),
    },
    Case {
        rule: LintRule::D02,
        virtual_path: "crates/stats/src/fixture.rs",
        fire: include_str!("fixtures/d02_fire.rs"),
        suppressed: include_str!("fixtures/d02_suppressed.rs"),
    },
    Case {
        rule: LintRule::D03,
        virtual_path: "crates/synth/src/fixture.rs",
        fire: include_str!("fixtures/d03_fire.rs"),
        suppressed: include_str!("fixtures/d03_suppressed.rs"),
    },
    Case {
        rule: LintRule::D04,
        virtual_path: "crates/core/src/fixture.rs",
        fire: include_str!("fixtures/d04_fire.rs"),
        suppressed: include_str!("fixtures/d04_suppressed.rs"),
    },
    Case {
        rule: LintRule::D05,
        virtual_path: "crates/synth/src/fixture.rs",
        fire: include_str!("fixtures/d05_fire.rs"),
        suppressed: include_str!("fixtures/d05_suppressed.rs"),
    },
    Case {
        rule: LintRule::D06,
        virtual_path: "crates/synth/src/norm_fixture.rs",
        fire: include_str!("fixtures/d06_fire.rs"),
        suppressed: include_str!("fixtures/d06_suppressed.rs"),
    },
    Case {
        rule: LintRule::D07,
        virtual_path: "crates/model/src/fixture.rs",
        fire: include_str!("fixtures/d07_fire.rs"),
        suppressed: include_str!("fixtures/d07_suppressed.rs"),
    },
    Case {
        rule: LintRule::D08,
        virtual_path: "crates/core/src/counts_fixture.rs",
        fire: include_str!("fixtures/d08_fire.rs"),
        suppressed: include_str!("fixtures/d08_suppressed.rs"),
    },
    Case {
        rule: LintRule::D09,
        virtual_path: "crates/stats/src/fixture.rs",
        fire: include_str!("fixtures/d09_fire.rs"),
        suppressed: include_str!("fixtures/d09_suppressed.rs"),
    },
    Case {
        rule: LintRule::D10,
        virtual_path: "crates/core/src/fixture.rs",
        fire: include_str!("fixtures/d10_fire.rs"),
        suppressed: include_str!("fixtures/d10_suppressed.rs"),
    },
    Case {
        rule: LintRule::D13,
        virtual_path: "crates/report/src/fixture.rs",
        fire: include_str!("fixtures/d13_fire.rs"),
        suppressed: include_str!("fixtures/d13_suppressed.rs"),
    },
    Case {
        rule: LintRule::D14,
        virtual_path: "crates/core/src/fixture.rs",
        fire: include_str!("fixtures/d14_fire.rs"),
        suppressed: include_str!("fixtures/d14_suppressed.rs"),
    },
    Case {
        rule: LintRule::D15,
        virtual_path: "crates/stream/src/fixture.rs",
        fire: include_str!("fixtures/d15_fire.rs"),
        suppressed: include_str!("fixtures/d15_suppressed.rs"),
    },
    Case {
        rule: LintRule::D16,
        // In scope even inside the serve crate: only conn.rs is exempt.
        virtual_path: "crates/serve/src/fixture.rs",
        fire: include_str!("fixtures/d16_fire.rs"),
        suppressed: include_str!("fixtures/d16_suppressed.rs"),
    },
];

#[test]
fn every_rule_fires_on_its_fixture() {
    for case in CASES {
        let r = lint_source(case.virtual_path, case.fire);
        assert!(
            r.report.has(case.rule),
            "{} fixture did not fire:\n{}",
            case.rule.code(),
            r.render_text()
        );
        let d = r.report.find(case.rule).expect("finding present");
        assert!(
            d.subjects[0].starts_with(case.virtual_path),
            "{}: finding lacks a path:line subject ({:?})",
            case.rule.code(),
            d.subjects
        );
    }
}

#[test]
fn suppressed_twin_is_silent() {
    for case in CASES {
        let r = lint_source(case.virtual_path, case.suppressed);
        assert!(
            !r.report.has(case.rule),
            "{} twin still fires:\n{}",
            case.rule.code(),
            r.render_text()
        );
        assert!(
            r.suppressed >= 1,
            "{} twin should count its suppression",
            case.rule.code()
        );
        assert!(
            !r.report.has(LintRule::D11),
            "{} twin suppression must carry a reason:\n{}",
            case.rule.code(),
            r.render_text()
        );
    }
}

#[test]
fn fire_fixtures_fire_at_error_or_warn() {
    for case in CASES {
        let r = lint_source(case.virtual_path, case.fire);
        let d = r.report.find(case.rule).expect("finding present");
        assert_eq!(d.severity, case.rule.severity());
    }
}
