//! # dcfail-dlint
//!
//! A determinism lint pass over the dcfail workspace's own Rust source.
//!
//! The workspace's core contract — parallel == sequential bit-for-bit, obs
//! on/off identical, shard == monolithic byte-identical — is enforced at
//! runtime by equivalence tests, which catch a violation only on the inputs
//! they happen to exercise. dlint turns the same invariants into build-time
//! source guarantees: it scans every crate with a hand-rolled
//! comment/string-blanking lexer (no `syn`, no new dependencies) and flags
//! the constructs that historically break reproducibility — unordered
//! iteration, NaN-sensitive comparators, wall-clock reads, ambient
//! randomness, unforked RNG captures in parallel closures, bare float
//! accumulation, and untested merge operators.
//!
//! Findings use the same Error/Warn/Info report machinery as `dcfail-audit`
//! (via `dcfail-findings`) and render as text or versioned JSON. Real
//! exceptions are declared inline:
//!
//! ```text
//! // dlint::allow(D03): obs-gated timer; never reaches analysis output
//! ```
//!
//! The reason is mandatory — an empty reason is itself a finding (D11).
//! Pre-existing debt lives in `dlint.baseline` at the workspace root, which
//! may only shrink; a stale entry is a finding (D12). The file ships empty.
//!
//! ```
//! let report = dcfail_dlint::lint_source(
//!     "crates/core/src/demo.rs",
//!     "use std::collections::HashMap;\n",
//! );
//! assert!(report.report.has(dcfail_dlint::LintRule::D01));
//! ```
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod baseline;
mod rules;
mod scan;

pub use baseline::{Baseline, BaselineEntry};
pub use dcfail_findings::{Diagnostic as GenericDiagnostic, Report, Severity};
pub use rules::FileCtx;
pub use scan::ScannedFile;

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One dlint finding (a [`LintRule`] plus `path:line` subject).
pub type Diagnostic = dcfail_findings::Diagnostic<LintRule>;

/// JSON schema version emitted in [`LintReport`] output.
pub const SCHEMA_VERSION: u32 = 1;

/// Name of the baseline file, resolved against the workspace root.
pub const BASELINE_FILE: &str = "dlint.baseline";

dcfail_findings::rule_catalog! {
    /// Stable identifier of one determinism rule.
    ///
    /// Serializes as the rule code (`"D01"` … `"D16"`). D01–D10 are the
    /// published catalog; D11/D12 police the escape hatches themselves;
    /// D13 guards the crash-safety boundary around checkpoint I/O; D14
    /// guards the fleet-scale perf contract on telemetry scans; D15 guards
    /// the O(slack) memory bound of the streaming ingest engine; D16
    /// confines raw socket I/O to the serve daemon's connection module.
    LintRule, domain = "dlint" {
        /// Hash collections iterate in randomized order.
        D01 = ("D01", Error,
            "no HashMap/HashSet in digest-bearing crates (core, stats, synth, report, shard, tickets, stream); use BTreeMap/BTreeSet or sorted Vec");
        /// `partial_cmp` is not a total order over floats.
        D02 = ("D02", Error,
            "no partial_cmp-based comparisons or sorts; use f64::total_cmp");
        /// Wall-clock and ambient randomness vary run to run.
        D03 = ("D03", Error,
            "no Instant::now/SystemTime::now/thread_rng/rand::random outside obs, bench and serve");
        /// Environment reads smuggle ambient state into analysis.
        D04 = ("D04", Error,
            "no std::env::var outside the par thread-resolution point");
        /// A shared RNG stream draws in schedule order.
        D05 = ("D05", Error,
            "closures passed to par_map/par_map_index/par_map_reduce that name an RNG must derive it via fork_index/fork");
        /// Naive float sums depend on merge order.
        D06 = ("D06", Warn,
            "float accumulation in accumulator modules should go through ExactSum/NormAccum, not bare +=");
        /// Belt and suspenders over `forbid(unsafe_code)`.
        D07 = ("D07", Error,
            "no unsafe token anywhere in the workspace");
        /// An untested merge operator is a latent shard-equivalence bug.
        D08 = ("D08", Error,
            "every Mergeable::absorb impl must be exercised by an absorb-law test");
        /// Stray stdout corrupts machine-readable pipelines.
        D09 = ("D09", Error,
            "no println!/eprintln! outside bin, bench and obs");
        /// Estimators accumulate in f64 or not at all.
        D10 = ("D10", Error,
            "no f32 in estimator crates (core, shard, stats, stream) outside the feature-vector pipeline");
        /// Suppressions must say why.
        D11 = ("D11", Error,
            "dlint::allow directives require a nonempty reason and a known rule code");
        /// The baseline may only shrink.
        D12 = ("D12", Warn,
            "baseline entries that no longer match any finding must be removed");
        /// Ambient filesystem writes dodge fault injection and crash testing.
        D13 = ("D13", Error,
            "no direct std::fs mutation (fs::write, File::create, OpenOptions, rename, remove, create_dir) in library crates; route writes through dcfail_ckpt::FaultFs");
        /// Per-log telemetry scans are linear in the sample window; a loop
        /// over them is the quadratic fleet-scale path all over again.
        D14 = ("D14", Error,
            "no samples_15min/monthly_transition_rate calls inside loops in library code; hoist the scan or use the bulk Telemetry::monthly_transition_rates pass");
        /// A growable event backlog silently voids the O(slack) bound.
        D15 = ("D15", Error,
            "no growable buffering of feed events (Vec push of event-like values) in stream library code; park arrivals in the slack-bounded reorder buffer");
        /// Scattered socket I/O dodges the serve daemon's timeout, size-cap
        /// and shutdown policy, which lives in exactly one module.
        D16 = ("D16", Error,
            "no TcpStream in library code outside crates/serve/src/conn.rs; route socket I/O through the serve connection module");
    }
}

/// The outcome of one lint pass: findings plus scan accounting, rendered as
/// text or versioned JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// The findings, sorted by (rule, path, line).
    pub report: Report<LintRule>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Findings shielded by inline `dlint::allow` directives.
    pub suppressed: usize,
    /// Findings forgiven by the baseline file.
    pub baselined: usize,
}

impl LintReport {
    /// Number of Error-level findings (the CI gate).
    pub fn error_count(&self) -> usize {
        self.report.error_count()
    }

    /// True when no Error-level finding exists.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// Renders the report as human-readable text: one line per finding, the
    /// shared summary line, then scan accounting.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.report.render_text();
        let _ = writeln!(
            out,
            "scanned {} file(s); {} finding(s) suppressed inline, {} baselined",
            self.files_scanned, self.suppressed, self.baselined
        );
        out
    }
}

impl Serialize for LintReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("schema_version".to_string(), SCHEMA_VERSION.to_value()),
            ("files_scanned".to_string(), self.files_scanned.to_value()),
            ("suppressed".to_string(), self.suppressed.to_value()),
            ("baselined".to_string(), self.baselined.to_value()),
            ("report".to_string(), self.report.to_value()),
        ])
    }
}

impl Deserialize for LintReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("lint report missing field '{name}'")))
        };
        let version = u32::from_value(field("schema_version")?)?;
        if version != SCHEMA_VERSION {
            return Err(serde::Error::custom(format!(
                "unsupported dlint schema version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        Ok(Self {
            report: Report::from_value(field("report")?)?,
            files_scanned: usize::from_value(field("files_scanned")?)?,
            suppressed: usize::from_value(field("suppressed")?)?,
            baselined: usize::from_value(field("baselined")?)?,
        })
    }
}

/// A set of scanned source files linted as one unit (rule D08 is cross-file).
#[derive(Debug)]
pub struct Corpus {
    files: Vec<ScannedFile>,
}

impl Corpus {
    /// Scans in-memory `(path, source)` pairs. Paths should be
    /// workspace-relative with `/` separators — rule scoping keys off them.
    pub fn from_sources<I, P, S>(sources: I) -> Corpus
    where
        I: IntoIterator<Item = (P, S)>,
        P: AsRef<str>,
        S: AsRef<str>,
    {
        let mut files: Vec<ScannedFile> = sources
            .into_iter()
            .map(|(p, s)| ScannedFile::scan(p.as_ref(), s.as_ref()))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Corpus { files }
    }

    /// Walks the workspace at `root` and scans every first-party `.rs` file:
    /// `src/`, `examples/`, `tests/` at the root plus each `crates/*`
    /// member. `vendor/`, `target/` and dlint's own rule fixtures are
    /// excluded.
    pub fn from_workspace(root: &Path) -> Result<Corpus, String> {
        let mut sources: Vec<(String, String)> = Vec::new();
        let mut roots: Vec<std::path::PathBuf> =
            vec![root.join("src"), root.join("examples"), root.join("tests")];
        let crates_dir = root.join("crates");
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        let mut members: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        roots.extend(members);

        for dir in roots {
            collect_rs_files(root, &dir, &mut sources)?;
        }
        if sources.is_empty() {
            return Err(format!(
                "no Rust sources found under {} — is it a workspace root?",
                root.display()
            ));
        }
        Ok(Corpus::from_sources(sources))
    }

    /// Number of files in the corpus.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the corpus holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Lints the corpus with no baseline.
    pub fn lint(&self) -> LintReport {
        self.lint_with_baseline(&Baseline::default())
    }

    /// Lints the corpus, filtering suppressed findings, applying `baseline`,
    /// and policing the escape hatches (D11, D12).
    pub fn lint_with_baseline(&self, baseline: &Baseline) -> LintReport {
        let mut raw: Vec<rules::RawFinding> = Vec::new();
        for file in &self.files {
            rules::lint_file(file, &mut raw);
        }
        rules::lint_absorb_coverage(&self.files, &mut raw);

        // Inline suppressions: a matching directive on the finding's line
        // shields it (directives on comment-only lines target the next line;
        // the scanner already resolved that).
        let mut suppressed = 0usize;
        raw.retain(|f| {
            let file = self
                .files
                .iter()
                .find(|s| s.path == f.path)
                .expect("finding refers to scanned file");
            if file.suppression(f.line - 1, f.rule.code()).is_some() {
                suppressed += 1;
                false
            } else {
                true
            }
        });

        // D11: every directive must carry a reason and name a known rule.
        // Test regions are exempt — rule fixtures and scanner tests quote
        // directive syntax in string literals the line scan cannot tell
        // apart from real directives.
        for file in &self.files {
            for d in &file.directives {
                if file.is_test_line(d.directive_line - 1) {
                    continue;
                }
                if LintRule::from_code(&d.code).is_none() {
                    raw.push(rules::RawFinding {
                        rule: LintRule::D11,
                        path: file.path.clone(),
                        line: d.directive_line,
                        message: format!("dlint::allow names unknown rule code '{}'", d.code),
                    });
                } else if d.reason.is_empty() {
                    raw.push(rules::RawFinding {
                        rule: LintRule::D11,
                        path: file.path.clone(),
                        line: d.directive_line,
                        message: format!(
                            "dlint::allow({}) has no reason; justify the exception after a colon",
                            d.code
                        ),
                    });
                }
            }
        }

        // Baseline: forgive up to `count` findings per (rule, path) entry;
        // an entry that forgives nothing is stale (D12).
        let mut baselined = 0usize;
        for entry in &baseline.entries {
            let mut remaining = entry.count;
            let before = raw.len();
            raw.retain(|f| {
                if remaining > 0 && f.rule.code() == entry.rule_code && f.path == entry.path {
                    remaining -= 1;
                    false
                } else {
                    true
                }
            });
            baselined += before - raw.len();
            if remaining > 0 {
                raw.push(rules::RawFinding {
                    rule: LintRule::D12,
                    path: entry.path.clone(),
                    line: 0,
                    message: format!(
                        "baseline entry `{} {} {}` forgives {} finding(s) that no longer occur; shrink the baseline",
                        entry.rule_code, entry.path, entry.count, remaining
                    ),
                });
            }
        }

        raw.sort_by(|a, b| {
            a.rule
                .code()
                .cmp(b.rule.code())
                .then_with(|| a.path.cmp(&b.path))
                .then(a.line.cmp(&b.line))
        });
        let diagnostics = raw
            .into_iter()
            .map(|f| {
                let subject = if f.line == 0 {
                    f.path
                } else {
                    format!("{}:{}", f.path, f.line)
                };
                Diagnostic::new(f.rule, vec![subject], f.message)
            })
            .collect();
        LintReport {
            report: Report::from_diagnostics(diagnostics),
            files_scanned: self.files.len(),
            suppressed,
            baselined,
        }
    }
}

/// Recursively collects `.rs` files under `dir` (if it exists) as
/// `(relative-path, contents)`, skipping `target/`, `vendor/` and dlint's
/// own firing fixtures.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, String)>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | "fixtures") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes workspace root", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            out.push((rel, text));
        }
    }
    Ok(())
}

/// Lints a single in-memory source file (no baseline). The `path` chooses
/// which rules apply — use a realistic workspace-relative path such as
/// `crates/core/src/demo.rs`.
pub fn lint_source(path: &str, source: &str) -> LintReport {
    Corpus::from_sources([(path, source)]).lint()
}

/// Lints the workspace at `root`, applying `root/dlint.baseline` if present.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let corpus = Corpus::from_workspace(root)?;
    let baseline = Baseline::load(&root.join(BASELINE_FILE))?;
    Ok(corpus.lint_with_baseline(&baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_d01_through_d16() {
        assert_eq!(LintRule::ALL.len(), 16);
        for (i, rule) in LintRule::ALL.iter().enumerate() {
            assert_eq!(rule.code(), format!("D{:02}", i + 1));
            assert_eq!(LintRule::from_code(rule.code()), Some(*rule));
        }
        assert_eq!(LintRule::from_code("D99"), None);
    }

    #[test]
    fn clean_source_yields_clean_report() {
        let r = lint_source(
            "crates/core/src/demo.rs",
            "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n",
        );
        assert!(r.report.is_empty(), "unexpected: {}", r.render_text());
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn report_json_roundtrip_carries_schema_version() {
        let r = lint_source(
            "crates/core/src/demo.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(r.report.has(LintRule::D01));
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"schema_version\""));
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let r = lint_source("crates/core/src/demo.rs", "fn f() {}\n");
        let mut json = serde_json::to_string(&r).unwrap();
        json = json.replace("\"schema_version\":1", "\"schema_version\":999");
        assert!(serde_json::from_str::<LintReport>(&json).is_err());
    }

    #[test]
    fn suppression_counts_and_shields() {
        let src =
            "use std::collections::HashMap; // dlint::allow(D01): interop with external map type\n";
        let r = lint_source("crates/core/src/demo.rs", src);
        assert!(r.report.is_empty(), "unexpected: {}", r.render_text());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn empty_reason_fires_d11() {
        let src = "// dlint::allow(D01)\nuse std::collections::HashMap;\n";
        let r = lint_source("crates/core/src/demo.rs", src);
        assert!(r.report.has(LintRule::D11));
        assert!(!r.report.has(LintRule::D01), "suppression still shields");
    }

    #[test]
    fn unknown_code_fires_d11() {
        let src = "// dlint::allow(D77): bogus\nfn f() {}\n";
        let r = lint_source("crates/core/src/demo.rs", src);
        assert!(r.report.has(LintRule::D11));
    }

    #[test]
    fn baseline_forgives_and_stale_entries_fire_d12() {
        let corpus = Corpus::from_sources([(
            "crates/core/src/demo.rs",
            "use std::collections::HashMap;\n",
        )]);
        let b = Baseline::parse("D01 crates/core/src/demo.rs 2\n").unwrap();
        let r = corpus.lint_with_baseline(&b);
        assert!(
            !r.report.has(LintRule::D01),
            "baseline forgives the finding"
        );
        assert_eq!(r.baselined, 1);
        assert!(r.report.has(LintRule::D12), "over-forgiving entry is stale");
    }

    #[test]
    fn findings_are_sorted_and_located() {
        let src = "use std::collections::HashSet;\nuse std::collections::HashMap;\n";
        let r = lint_source("crates/stats/src/demo.rs", src);
        let subjects: Vec<_> = r
            .report
            .diagnostics
            .iter()
            .map(|d| d.subjects[0].clone())
            .collect();
        assert_eq!(
            subjects,
            vec!["crates/stats/src/demo.rs:1", "crates/stats/src/demo.rs:2"]
        );
    }
}
