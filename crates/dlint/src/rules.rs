//! The D-rule implementations.
//!
//! Each rule walks the blanked token stream of [`ScannedFile`]s and emits
//! raw findings; suppression directives and the baseline are applied by the
//! caller ([`crate::Corpus::lint`]). Rules are heuristic by design — they
//! trade soundness for zero dependencies and zero false negatives on the
//! constructs this workspace actually uses.

use crate::scan::{has_token, is_ident, token_positions, ScannedFile};
use crate::LintRule;

/// A raw finding before suppression/baseline filtering.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Violated rule.
    pub rule: LintRule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based offending line.
    pub line: usize,
    /// Human-oriented message with a fix-it hint.
    pub message: String,
}

impl RawFinding {
    fn new(rule: LintRule, file: &ScannedFile, idx: usize, message: impl Into<String>) -> Self {
        RawFinding {
            rule,
            path: file.path.clone(),
            line: idx + 1,
            message: message.into(),
        }
    }
}

/// How a file is classified for rule scoping.
#[derive(Debug)]
pub struct FileCtx {
    /// Crate short name (`core`, `stats`, …; `dcfail` for the root facade).
    pub crate_name: String,
    /// Under a `tests/` directory.
    pub in_tests_dir: bool,
    /// A binary, bench or example entry point.
    pub is_bin_or_example: bool,
}

impl FileCtx {
    /// Classifies a workspace-relative path.
    pub fn classify(path: &str) -> FileCtx {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("dcfail")
            .to_string();
        FileCtx {
            crate_name,
            in_tests_dir: path.starts_with("tests/") || path.contains("/tests/"),
            is_bin_or_example: path.contains("/bin/")
                || path.contains("/benches/")
                || path.starts_with("examples/")
                || path.contains("/examples/"),
        }
    }
}

/// Crates whose analysis output feeds the golden digests: unordered
/// iteration anywhere in them is a reproducibility hazard (D01).
const ORDERED_CRATES: &[&str] = &[
    "core", "stats", "synth", "report", "shard", "tickets", "stream",
];

/// Crates allowed to read wall-clock time and ambient randomness (D03):
/// obs and bench exist to measure, and the serve daemon times request
/// latency and socket deadlines — none of it reaches analysis output.
const CLOCK_CRATES: &[&str] = &["obs", "bench", "serve"];

/// Crates whose *libraries* may write to stdout/stderr (D09). Narrower than
/// [`CLOCK_CRATES`]: serve may read clocks but must return `Response`
/// values, not print — its binary front-end (`repro serve`) owns the
/// terminal.
const STDOUT_CRATES: &[&str] = &["obs", "bench"];

/// The one library module allowed to touch `TcpStream` (D16): every socket
/// read/write shares its timeout, size-cap and shutdown policy.
const SOCKET_ALLOWLIST: &[&str] = &["crates/serve/src/conn.rs"];

/// Files allowed to read process environment variables (D04): the thread
/// count is resolved once, here, and nowhere else.
const ENV_ALLOWLIST: &[&str] = &["crates/par/src/lib.rs"];

/// Estimator crates where `f32` silently halves precision (D10)…
const F64_CRATES: &[&str] = &["core", "shard", "stats", "stream"];

/// …except the TF-IDF/k-means feature-vector pipeline, which uses `f32`
/// deliberately (memory-bound, order-insensitive distances).
const F32_ALLOWLIST: &[&str] = &["crates/stats/src/text.rs", "crates/stats/src/kmeans.rs"];

/// Ambient time / randomness constructors (D03).
const CLOCK_TOKENS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "rand::random",
];

/// Direct filesystem-mutation constructors (D13). Boundary-checked, so
/// `fs::create_dir` does not double-fire on `fs::create_dir_all`.
const FS_WRITE_TOKENS: &[&str] = &[
    "fs::write",
    "File::create",
    "OpenOptions",
    "fs::rename",
    "fs::remove_file",
    "fs::remove_dir",
    "fs::create_dir",
    "fs::create_dir_all",
];

/// Per-log telemetry scans that cost O(window samples) per call (D14).
/// Calling one per machine rebuilds the quadratic fleet × samples hot path
/// the columnar report rewrite removed; the bulk
/// `Telemetry::monthly_transition_rates` pass exists so nothing has to.
const HOT_SCAN_TOKENS: &[&str] = &["samples_15min", "monthly_transition_rate"];

/// Entry points whose closures must fork their RNG per item (D05).
const PAR_ENTRY_POINTS: &[&str] = &["par_map_reduce", "par_map_index", "par_map"];

/// Sanctioned ways to derive a per-item RNG stream inside a par closure.
const RNG_FORK_TOKENS: &[&str] = &["fork_index", ".fork(", "StreamRng::new"];

/// Runs every per-file rule over one scanned file.
pub fn lint_file(file: &ScannedFile, findings: &mut Vec<RawFinding>) {
    let ctx = FileCtx::classify(&file.path);
    for (idx, line) in file.lines.iter().enumerate() {
        let in_test = file.is_test_line(idx);

        // D07 applies everywhere, including tests: `forbid(unsafe_code)` can
        // be re-allowed by an inner attribute, the token scan cannot.
        if has_token(line, "unsafe") {
            findings.push(RawFinding::new(
                LintRule::D07,
                file,
                idx,
                "`unsafe` is banned workspace-wide; restructure with safe abstractions",
            ));
        }

        if in_test {
            continue;
        }

        lint_code_line(&ctx, file, idx, line, findings);
    }

    lint_par_closures(file, findings);
    if !ctx.is_bin_or_example {
        lint_hot_loops(file, findings);
    }
}

/// The I/O-confinement rules: each nondeterministic edge gets exactly one
/// named door — `std::fs` mutation goes through `dcfail_ckpt::FaultFs`
/// (D13), raw sockets through the serve connection module (D16).
fn lint_io_doors(
    ctx: &FileCtx,
    file: &ScannedFile,
    idx: usize,
    line: &str,
    findings: &mut Vec<RawFinding>,
) {
    if ctx.is_bin_or_example {
        return;
    }

    if !SOCKET_ALLOWLIST.contains(&file.path.as_str()) && has_token(line, "TcpStream") {
        findings.push(RawFinding::new(
            LintRule::D16,
            file,
            idx,
            "TcpStream in library code outside the serve connection module scatters socket I/O; route it through crates/serve/src/conn.rs so timeouts, size caps and shutdown semantics stay in one place",
        ));
    }

    for tok in FS_WRITE_TOKENS {
        if has_token(line, tok) {
            findings.push(RawFinding::new(
                LintRule::D13,
                file,
                idx,
                format!("{tok} mutates the filesystem from library code; route the write through dcfail_ckpt::FaultFs so faults stay injectable and tests stay hermetic"),
            ));
        }
    }
}

/// The per-line rules that only apply outside test regions (D01–D04, D06,
/// D09, D10, D13, D15, D16).
fn lint_code_line(
    ctx: &FileCtx,
    file: &ScannedFile,
    idx: usize,
    line: &str,
    findings: &mut Vec<RawFinding>,
) {
    if ORDERED_CRATES.contains(&ctx.crate_name.as_str()) {
        for tok in ["HashMap", "HashSet"] {
            if has_token(line, tok) {
                findings.push(RawFinding::new(
                    LintRule::D01,
                    file,
                    idx,
                    format!("{tok} in a digest-bearing crate; use BTreeMap/BTreeSet or a sorted Vec so iteration order is deterministic"),
                ));
            }
        }
    }

    if has_token(line, "partial_cmp") {
        findings.push(RawFinding::new(
            LintRule::D02,
            file,
            idx,
            "partial_cmp yields None on NaN and makes comparator order input-dependent; use f64::total_cmp",
        ));
    }

    if !CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
        for tok in CLOCK_TOKENS {
            if has_token(line, tok) {
                findings.push(RawFinding::new(
                    LintRule::D03,
                    file,
                    idx,
                    format!("{tok} injects wall-clock/ambient state into an analysis crate; thread a seeded StreamRng or move timing into obs/bench"),
                ));
            }
        }
    }

    if has_token(line, "env::var") && !ENV_ALLOWLIST.contains(&file.path.as_str()) {
        findings.push(RawFinding::new(
            LintRule::D04,
            file,
            idx,
            "environment reads outside the par thread-resolution point make output depend on ambient process state; plumb configuration explicitly",
        ));
    }

    if is_accumulator_file(&file.path) && line.contains("+=") && line_has_float_evidence(line) {
        findings.push(RawFinding::new(
            LintRule::D06,
            file,
            idx,
            "bare float += in an accumulator module; route the sum through ExactSum/NormAccum so merge order cannot change the total",
        ));
    }

    if !(ctx.is_bin_or_example || STDOUT_CRATES.contains(&ctx.crate_name.as_str())) {
        for tok in ["println!", "eprintln!"] {
            if line.contains(tok) {
                findings.push(RawFinding::new(
                    LintRule::D09,
                    file,
                    idx,
                    format!("{tok} in library code; return data or use the obs layer — stdout belongs to binaries"),
                ));
            }
        }
    }

    lint_io_doors(ctx, file, idx, line, findings);

    if ctx.crate_name == "stream" {
        for (pos, _) in line.match_indices(".push(") {
            let arg = paren_argument(&line[pos + ".push(".len()..]);
            if names_event(arg) {
                findings.push(RawFinding::new(
                    LintRule::D15,
                    file,
                    idx,
                    "growable push of a feed event in stream library code voids the O(slack) memory bound; park arrivals in the watermark-drained reorder buffer instead",
                ));
            }
        }
    }

    if F64_CRATES.contains(&ctx.crate_name.as_str())
        && !F32_ALLOWLIST.contains(&file.path.as_str())
        && has_token(line, "f32")
    {
        findings.push(RawFinding::new(
            LintRule::D10,
            file,
            idx,
            "f32 in an estimator crate halves precision and breaks cross-platform bit-identity; use f64 (feature vectors live in text/kmeans)",
        ));
    }
}

/// Trims `rest` (the text just past a call's open paren) to the argument
/// list: everything up to the matching close paren, or the whole remainder
/// of the line when the call spans lines (D15 heuristic).
fn paren_argument(rest: &str) -> &str {
    let mut depth = 1usize;
    for (pos, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return &rest[..pos];
                }
            }
            _ => {}
        }
    }
    rest
}

/// True when the region names an identifier that denotes a raw feed event
/// (D15): `ev`, `evt`, `event`, `payload`, or anything containing `event`.
fn names_event(region: &str) -> bool {
    let mut ident = String::new();
    for c in region.chars().chain(std::iter::once(' ')) {
        if is_ident(c) {
            ident.push(c);
        } else {
            if !ident.is_empty() {
                let lower = ident.to_ascii_lowercase();
                if matches!(lower.as_str(), "ev" | "evt" | "payload") || lower.contains("event") {
                    return true;
                }
            }
            ident.clear();
        }
    }
    false
}

/// D14: an O(window) telemetry scan (`samples_15min`,
/// `monthly_transition_rate`) called inside a `for`/`while`/`loop` body in
/// library code. Per-machine loops over these scans are exactly the
/// quadratic hot path the columnar report rewrite removed — hoist the call
/// or use the bulk `monthly_transition_rates` pass (whose own loop is the
/// one sanctioned, `dlint::allow`ed site).
///
/// The walk is lexical: brace depth plus a stack of the depths at which a
/// loop body opened. `for` counts as a loop header only when followed by an
/// `in` token on the same line, which keeps `impl Trait for T` and
/// `for<'a>` bounds out; closures handed to iterator adapters are not loops
/// to this rule — heuristic by design, like every rule here.
fn lint_hot_loops(file: &ScannedFile, findings: &mut Vec<RawFinding>) {
    enum Ev {
        Open,
        Close,
        Semi,
        LoopKw,
        Hot(&'static str),
    }
    let mut depth = 0usize;
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let mut events: Vec<(usize, Ev)> = Vec::new();
        for (pos, c) in line.char_indices() {
            match c {
                '{' => events.push((pos, Ev::Open)),
                '}' => events.push((pos, Ev::Close)),
                ';' => events.push((pos, Ev::Semi)),
                _ => {}
            }
        }
        for kw in ["while", "loop"] {
            for pos in token_positions(line, kw) {
                events.push((pos, Ev::LoopKw));
            }
        }
        for pos in token_positions(line, "for") {
            if has_token(&line[pos..], "in") {
                events.push((pos, Ev::LoopKw));
            }
        }
        for tok in HOT_SCAN_TOKENS {
            for pos in token_positions(line, tok) {
                events.push((pos, Ev::Hot(tok)));
            }
        }
        // Cold path (one pass per source line) and positions are unique per
        // event kind, so a stable sort costs nothing and keys are total.
        events.sort_by_key(|&(pos, _)| pos);
        for (_, ev) in events {
            match ev {
                Ev::Open => {
                    depth += 1;
                    if pending {
                        loop_depths.push(depth);
                        pending = false;
                    }
                }
                Ev::Close => {
                    depth = depth.saturating_sub(1);
                    while loop_depths.last().is_some_and(|&d| d > depth) {
                        loop_depths.pop();
                    }
                }
                Ev::Semi => pending = false,
                Ev::LoopKw => pending = true,
                Ev::Hot(tok) => {
                    if !loop_depths.is_empty() && !file.is_test_line(idx) {
                        findings.push(RawFinding::new(
                            LintRule::D14,
                            file,
                            idx,
                            format!("{tok} is O(window samples) per call; a loop over it rebuilds the quadratic telemetry path — hoist the scan or use the bulk Telemetry::monthly_transition_rates pass"),
                        ));
                    }
                }
            }
        }
    }
}

/// D05: a closure handed to a `par_map*` entry point that names an RNG must
/// derive it per item via `fork_index`/`fork`/`StreamRng::new`; capturing a
/// shared stream reintroduces schedule-dependent draws.
fn lint_par_closures(file: &ScannedFile, findings: &mut Vec<RawFinding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        for entry in PAR_ENTRY_POINTS {
            for pos in token_positions(line, entry) {
                let Some(region) = call_region(file, idx, pos + entry.len()) else {
                    continue;
                };
                let sanctioned = RNG_FORK_TOKENS.iter().any(|t| region.contains(t));
                if !sanctioned && region_names_rng(&region) {
                    findings.push(RawFinding::new(
                        LintRule::D05,
                        file,
                        idx,
                        format!("closure passed to {entry} names an RNG without deriving it via fork_index/fork; shared streams make draw order depend on the schedule"),
                    ));
                }
            }
        }
    }
}

/// Extracts the text of a call's argument list starting at `start` (a byte
/// offset just past the callee name on 0-based line `idx`), spanning lines
/// until the matching close paren.
fn call_region(file: &ScannedFile, idx: usize, start: usize) -> Option<String> {
    let mut region = String::new();
    let mut depth = 0usize;
    let mut started = false;
    for (li, line) in file.lines.iter().enumerate().skip(idx) {
        let tail: &str = if li == idx { line.get(start..)? } else { line };
        for c in tail.chars() {
            if !started {
                match c {
                    '(' => {
                        started = true;
                        depth = 1;
                    }
                    c if c.is_whitespace() => {}
                    _ => return None, // not a call site (e.g. a doc mention)
                }
                continue;
            }
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(region);
                    }
                }
                _ => region.push(c),
            }
        }
        region.push('\n');
        if region.len() > 20_000 {
            break; // unbalanced parens; bail rather than scan the whole file
        }
    }
    None
}

/// True when the region mentions an identifier containing `rng`.
fn region_names_rng(region: &str) -> bool {
    let mut ident = String::new();
    for c in region.chars().chain(std::iter::once(' ')) {
        if is_ident(c) {
            ident.push(c);
        } else {
            if !ident.is_empty() && ident.to_ascii_lowercase().contains("rng") {
                return true;
            }
            ident.clear();
        }
    }
    false
}

/// D06 scope: modules that exist to accumulate floating-point state.
fn is_accumulator_file(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    ["accum", "norm", "merge", "hazard"]
        .iter()
        .any(|m| name.contains(m))
}

/// Heuristic: does this line visibly manipulate floats?
fn line_has_float_evidence(line: &str) -> bool {
    if has_token(line, "f64") || has_token(line, "f32") {
        return true;
    }
    // A numeric literal with a decimal point, e.g. `* 7.0`.
    let b: Vec<char> = line.chars().collect();
    b.windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

/// D08: every `impl Mergeable for X` must be exercised by an absorb-law
/// test — some test region mentioning both `X` and `absorb`.
pub fn lint_absorb_coverage(files: &[ScannedFile], findings: &mut Vec<RawFinding>) {
    struct Impl {
        type_name: String,
        file_index: usize,
        line_idx: usize,
    }
    let mut impls: Vec<Impl> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (idx, line) in file.lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            for pos in token_positions(line, "Mergeable for") {
                if !line[..pos].contains("impl") {
                    continue;
                }
                let after = &line[pos + "Mergeable for".len()..];
                let type_name: String = after
                    .trim_start()
                    .chars()
                    .take_while(|&c| is_ident(c))
                    .collect();
                if !type_name.is_empty() {
                    impls.push(Impl {
                        type_name,
                        file_index: fi,
                        line_idx: idx,
                    });
                }
            }
        }
    }
    for im in impls {
        let covered = files.iter().any(|f| {
            let Some(test_from) = f.test_from else {
                return false;
            };
            let mut names_type = false;
            let mut names_absorb = false;
            for line in &f.lines[test_from..] {
                names_type = names_type || has_token(line, &im.type_name);
                names_absorb = names_absorb || has_token(line, "absorb");
                if names_type && names_absorb {
                    return true;
                }
            }
            false
        });
        if !covered {
            findings.push(RawFinding::new(
                LintRule::D08,
                &files[im.file_index],
                im.line_idx,
                format!("Mergeable impl for {} has no absorb-law test; add a test absorbing split halves and comparing against the sequential result", im.type_name),
            ));
        }
    }
}
