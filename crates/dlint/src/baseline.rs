//! The grandfathered-findings baseline.
//!
//! `dlint.baseline` at the workspace root lists findings that predate the
//! lint and are tolerated until paid down. The file may only ever shrink: a
//! baseline entry that no longer matches anything is itself a finding (D12,
//! stale entry), and CI refuses a grown baseline outright. The file ships
//! empty — the workspace is clean at head.

use std::path::Path;

/// One grandfathered allowance: up to `count` findings of `rule_code` in
/// `path` are filtered from the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule code, e.g. `"D01"`.
    pub rule_code: String,
    /// Workspace-relative file path the allowance applies to.
    pub path: String,
    /// Maximum number of findings forgiven.
    pub count: usize,
}

/// A parsed `dlint.baseline` file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline format: one `<CODE> <path> <count>` entry per
    /// line; blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(code), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "dlint.baseline:{}: expected `<CODE> <path> <count>`, got `{line}`",
                    i + 1
                ));
            };
            if parts.next().is_some() {
                return Err(format!(
                    "dlint.baseline:{}: trailing tokens after count in `{line}`",
                    i + 1
                ));
            }
            let count: usize = count.parse().map_err(|_| {
                format!("dlint.baseline:{}: count `{count}` is not a number", i + 1)
            })?;
            entries.push(BaselineEntry {
                rule_code: code.to_string(),
                path: path.to_string(),
                count,
            });
        }
        Ok(Baseline { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// True when the baseline forgives nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total findings the baseline would forgive.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let b = Baseline::parse("# legacy debt\nD01 crates/stats/src/text.rs 3\n\n").unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].rule_code, "D01");
        assert_eq!(b.entries[0].count, 3);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Baseline::parse("D01 only-two-fields").is_err());
        assert!(Baseline::parse("D01 p not-a-number").is_err());
        assert!(Baseline::parse("D01 p 1 extra").is_err());
    }

    #[test]
    fn empty_text_is_empty_baseline() {
        assert!(Baseline::parse("# nothing\n").unwrap().is_empty());
    }
}
