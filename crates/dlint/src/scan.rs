//! A comment/string-blanking scanner over Rust source.
//!
//! dlint does not parse Rust; it lexes just enough to (a) blank out comments,
//! string literals and char literals so token rules never fire on prose, (b)
//! locate the file's trailing `#[cfg(test)]` region, and (c) collect inline
//! `// dlint::allow(Dxx): reason` suppression directives. Newlines are
//! preserved, so findings carry exact 1-based line numbers.

/// One parsed `dlint::allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule code the directive names, e.g. `"D03"`.
    pub code: String,
    /// The mandatory justification after the colon (may be empty — that is
    /// itself a finding, rule D11).
    pub reason: String,
    /// 1-based line the directive is written on.
    pub directive_line: usize,
}

/// A scanned source file: blanked lines, test-region boundary, suppressions.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Source lines with comments, strings and char literals blanked to
    /// spaces. Same line count and (per line) same byte layout as the input.
    pub lines: Vec<String>,
    /// Original source lines (directives live in comments, so raw text is
    /// kept for reporting).
    pub raw_lines: Vec<String>,
    /// 0-based index of the first line of the `#[cfg(test)]` region, if any.
    /// Everything at or after this line is test code. `Some(0)` marks a file
    /// that is test code in its entirety (anything under a `tests/` dir).
    pub test_from: Option<usize>,
    /// Per-line active suppressions (0-based line index → directives that
    /// apply to that line).
    suppressions: Vec<Vec<Suppression>>,
    /// Every directive in the file, whether or not it shields a finding.
    pub directives: Vec<Suppression>,
}

impl ScannedFile {
    /// Scans `source`, blanking non-code text and collecting directives.
    pub fn scan(path: &str, source: &str) -> ScannedFile {
        let blanked = blank_non_code(source);
        let lines: Vec<String> = split_lines(&blanked);
        let raw_lines: Vec<String> = split_lines(source);
        let whole_file_is_test = path_is_test(path);

        let mut test_from = whole_file_is_test.then_some(0);
        if test_from.is_none() {
            for (i, line) in lines.iter().enumerate() {
                if line.starts_with('#') && line.trim_end() == "#[cfg(test)]" {
                    test_from = Some(i);
                    break;
                }
            }
        }

        let mut suppressions: Vec<Vec<Suppression>> = vec![Vec::new(); raw_lines.len()];
        let mut directives = Vec::new();
        for (i, raw) in raw_lines.iter().enumerate() {
            let Some((code, reason, comment_only)) = parse_directive(raw) else {
                continue;
            };
            let sup = Suppression {
                code,
                reason,
                directive_line: i + 1,
            };
            directives.push(sup.clone());
            // A directive on a code line shields that line; a directive on a
            // comment-only line shields the next line.
            let target = if comment_only { i + 1 } else { i };
            if target < suppressions.len() {
                suppressions[target].push(sup);
            }
        }

        ScannedFile {
            path: path.to_string(),
            lines,
            raw_lines,
            test_from,
            suppressions,
            directives,
        }
    }

    /// Whether 0-based line `idx` lies in the test region.
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.test_from.is_some_and(|t| idx >= t)
    }

    /// The suppression shielding rule `code` on 0-based line `idx`, if any.
    pub fn suppression(&self, idx: usize, code: &str) -> Option<&Suppression> {
        self.suppressions
            .get(idx)
            .and_then(|v| v.iter().find(|s| s.code == code))
    }
}

/// True for paths whose every line counts as test code.
fn path_is_test(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

fn split_lines(text: &str) -> Vec<String> {
    text.lines().map(str::to_string).collect()
}

/// Parses a `// dlint::allow(Dxx): reason` directive out of a raw line.
///
/// Returns `(code, reason, comment_only)`; `comment_only` is true when the
/// line holds nothing but the comment (so the directive targets the next
/// line).
fn parse_directive(raw: &str) -> Option<(String, String, bool)> {
    let comment = raw.find("//")?;
    let pos = raw.find("dlint::allow(")?;
    if pos < comment {
        return None; // `dlint::allow(` in actual code, not a directive
    }
    let rest = &raw[pos + "dlint::allow(".len()..];
    let close = rest.find(')')?;
    let code = rest[..close].trim().to_string();
    // Only well-formed `Dnn` codes register as directives; anything else
    // (e.g. `Dxx` in prose describing the syntax) is not a directive at all.
    // Misspelled-but-well-formed codes still reach the D11 catalog check.
    let mut chars = code.chars();
    if chars.next() != Some('D') || code.len() != 3 || !chars.all(|c| c.is_ascii_digit()) {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .map_or(String::new(), |r| r.trim().to_string());
    let comment_only = raw[..comment].trim().is_empty();
    Some((code, reason, comment_only))
}

/// Replaces comments, string literals and char literals with spaces,
/// preserving newlines and line lengths.
// One state machine, one state per lexical mode: splitting it would
// scatter the mode transitions the correctness argument hangs on.
#[allow(clippy::too_many_lines)]
fn blank_non_code(source: &str) -> String {
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        CharLit,
    }
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            out.push('\n');
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = b.get(i + 1).copied();
                let prev_is_ident = i > 0 && is_ident(b[i - 1]);
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if !prev_is_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                    // Possible raw string: r"…", r#"…"#, br"…", br#"…"#.
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0usize;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    mode = Mode::Str;
                    out.push(' ');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime (`'a`, `'static`) vs char literal (`'a'`,
                    // `'\n'`): a lifetime is `'` + ident char not followed by
                    // a closing quote.
                    let is_lifetime = next.is_some_and(|n| is_ident(n) && n != '\\')
                        && b.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push('\'');
                    } else {
                        mode = Mode::CharLit;
                        out.push(' ');
                    }
                    i += 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                out.push(' ');
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = b.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    out.push_str("  ");
                    i += 2;
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    out.push_str("  ");
                    i += 2;
                    mode = Mode::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::Str | Mode::CharLit => {
                let closing = if matches!(mode, Mode::Str) { '"' } else { '\'' };
                if c == '\\' {
                    out.push(' ');
                    if b.get(i + 1).is_some_and(|&n| n != '\n') {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == closing {
                    out.push(' ');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

/// True for characters that may appear in a Rust identifier.
pub fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte offsets at which `token` occurs in `line` with non-identifier
/// characters (or boundaries) on both sides. `token` itself may contain
/// punctuation (`Instant::now`); only its first and last characters are
/// boundary-checked.
pub fn token_positions(line: &str, token: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap_or(' '));
        let after = line[at + token.len()..].chars().next().unwrap_or(' ');
        let first = token.chars().next().unwrap_or(' ');
        let before_applies = !is_ident(first) || before_ok;
        let last = token.chars().next_back().unwrap_or(' ');
        let after_applies = !is_ident(last) || !is_ident(after);
        if before_applies && after_applies {
            found.push(at);
        }
        from = at + token.len();
    }
    found
}

/// True when `token` occurs in `line` at an identifier boundary.
pub fn has_token(line: &str, token: &str) -> bool {
    !token_positions(line, token).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let s = ScannedFile::scan(
            "x.rs",
            "let a = 1; // HashMap here\n/* HashMap */ let b = 2;\n",
        );
        assert!(!s.lines[0].contains("HashMap"));
        assert!(!s.lines[1].contains("HashMap"));
        assert!(s.lines[0].contains("let a = 1;"));
        assert!(s.lines[1].contains("let b = 2;"));
    }

    #[test]
    fn blanks_nested_block_comments() {
        let s = ScannedFile::scan("x.rs", "/* outer /* HashMap */ still */ let x = 3;\n");
        assert!(!s.lines[0].contains("HashMap"));
        assert!(!s.lines[0].contains("still"));
        assert!(s.lines[0].contains("let x = 3;"));
    }

    #[test]
    fn blanks_strings_and_chars_but_not_lifetimes() {
        let s = ScannedFile::scan(
            "x.rs",
            "fn f<'a>(x: &'a str) -> char { let c = 'x'; let s = \"HashMap 'y'\"; c }\n",
        );
        assert!(s.lines[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!s.lines[0].contains("HashMap"));
        assert!(!s.lines[0].contains('x') || !s.lines[0].contains("'x'"));
    }

    #[test]
    fn blanks_raw_strings() {
        let s = ScannedFile::scan("x.rs", "let r = r#\"HashMap \"inner\" \"#; let y = r;\n");
        assert!(!s.lines[0].contains("HashMap"));
        assert!(s.lines[0].contains("let y = r;"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = ScannedFile::scan("x.rs", "let s = \"a\\\"HashMap\"; let t = 1;\n");
        assert!(!s.lines[0].contains("HashMap"));
        assert!(s.lines[0].contains("let t = 1;"));
    }

    #[test]
    fn finds_test_region_at_column_zero() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n";
        let s = ScannedFile::scan("crates/x/src/l.rs", src);
        assert_eq!(s.test_from, Some(1));
        assert!(!s.is_test_line(0));
        assert!(s.is_test_line(2));
    }

    #[test]
    fn tests_dir_is_all_test_region() {
        let s = ScannedFile::scan("crates/x/tests/t.rs", "fn a() {}\n");
        assert_eq!(s.test_from, Some(0));
    }

    #[test]
    fn directive_on_code_line_targets_that_line() {
        let src = "let x = now(); // dlint::allow(D03): sanctioned timer\n";
        let s = ScannedFile::scan("x.rs", src);
        let sup = s.suppression(0, "D03").expect("directive applies");
        assert_eq!(sup.reason, "sanctioned timer");
    }

    #[test]
    fn directive_on_comment_line_targets_next_line() {
        let src = "// dlint::allow(D03): sanctioned timer\nlet x = now();\n";
        let s = ScannedFile::scan("x.rs", src);
        assert!(s.suppression(0, "D03").is_none());
        assert!(s.suppression(1, "D03").is_some());
    }

    #[test]
    fn directive_with_empty_reason_is_recorded() {
        let src = "// dlint::allow(D05)\nlet x = 1;\n";
        let s = ScannedFile::scan("x.rs", src);
        assert_eq!(s.directives.len(), 1);
        assert!(s.directives[0].reason.is_empty());
    }

    #[test]
    fn token_positions_respect_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("let par_map_reduce = 1;", "par_map"));
        assert!(has_token("par_map(xs, f)", "par_map"));
        assert!(has_token("t = Instant::now();", "Instant::now"));
        assert!(!has_token("t = MyInstant::nowish();", "Instant::now"));
    }
}
