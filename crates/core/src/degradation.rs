//! Graceful estimator degradation for incomplete or recovered datasets.
//!
//! The headline estimators ([`rates::weekly_failure_rates`] panics when an
//! estate group never fails; [`interfailure::analyze`] and
//! [`repair::analyze`] return bare `None` below their sample floors) assume a
//! complete, healthy trace. A dataset that went through quarantine-and-
//! recover ingest — or any real trace with gaps — can silently lose whole
//! machine groups, and a panic or an unexplained `None` is the wrong answer
//! for a pipeline that deliberately accepted degraded input.
//!
//! This module wraps those estimators in [`Robust`]: the estimate when it is
//! computable, a completeness fraction, and typed [`Caveat`]s naming exactly
//! what is missing — so downstream reporting can print "VM inter-failure fit
//! unavailable: 3 gaps, need 10" instead of dying.

use crate::{interfailure, rates, repair};
use dcfail_model::prelude::*;
use std::fmt;

/// Minimum sample size the distribution-fitting estimators require.
const FIT_FLOOR: usize = 10;

/// One reason an estimate is missing or weaker than usual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Caveat {
    /// Stable machine-readable code (kebab-case).
    pub code: &'static str,
    /// Human-readable explanation with the relevant numbers.
    pub message: String,
}

impl Caveat {
    /// Creates a caveat.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Caveat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

/// An estimate that degrades gracefully instead of panicking.
///
/// `value` is `None` when the estimate cannot be computed at all;
/// `completeness` is the estimator's own measure of how much of its required
/// input was present (1.0 = everything); `caveats` name what is missing.
#[derive(Debug, Clone, PartialEq)]
pub struct Robust<T> {
    /// The estimate, when computable.
    pub value: Option<T>,
    /// Fraction of the estimator's required input that was present, in
    /// `[0, 1]`.
    pub completeness: f64,
    /// Everything that is missing or weaker than usual.
    pub caveats: Vec<Caveat>,
}

impl<T> Robust<T> {
    /// A fully computed estimate with no caveats.
    pub fn complete(value: T) -> Self {
        Self {
            value: Some(value),
            completeness: 1.0,
            caveats: Vec::new(),
        }
    }

    /// An estimate computed from degraded input.
    pub fn degraded(value: T, completeness: f64, caveats: Vec<Caveat>) -> Self {
        Self {
            value: Some(value),
            completeness: completeness.clamp(0.0, 1.0),
            caveats,
        }
    }

    /// No estimate could be produced.
    pub fn unavailable(completeness: f64, caveats: Vec<Caveat>) -> Self {
        Self {
            value: None,
            completeness: completeness.clamp(0.0, 1.0),
            caveats,
        }
    }

    /// True when the estimate is present and carries no caveats.
    pub fn is_complete(&self) -> bool {
        self.value.is_some() && self.caveats.is_empty()
    }
}

/// Fig. 2 weekly failure rates that tolerate missing estate groups.
///
/// [`rates::weekly_failure_rates`] panics when PMs or VMs never fail; this
/// variant reports the absent group as a caveat instead. The full figure is
/// only produced when both estate groups have failures (its type requires
/// both); completeness is the fraction of the two estate groups present.
pub fn weekly_failure_rates_robust(dataset: &FailureDataset) -> Robust<rates::WeeklyFailureRates> {
    let all_pm = rates::group_summary(dataset, MachineKind::Pm, None);
    let all_vm = rates::group_summary(dataset, MachineKind::Vm, None);
    let mut caveats = Vec::new();
    if all_pm.is_none() {
        caveats.push(Caveat::new(
            "no-pm-failures",
            "no PM failures (or no PMs) in the dataset; Fig. 2 needs both estate groups",
        ));
    }
    if all_vm.is_none() {
        caveats.push(Caveat::new(
            "no-vm-failures",
            "no VM failures (or no VMs) in the dataset; Fig. 2 needs both estate groups",
        ));
    }
    let present = usize::from(all_pm.is_some()) + usize::from(all_vm.is_some());
    let completeness = present as f64 / 2.0;
    let (Some(all_pm), Some(all_vm)) = (all_pm, all_vm) else {
        return Robust::unavailable(completeness, caveats);
    };
    let per_subsystem = dataset
        .topology()
        .subsystems()
        .iter()
        .map(|meta| rates::SubsystemRates {
            name: meta.name().to_string(),
            pm: rates::group_summary(dataset, MachineKind::Pm, Some(meta.id())),
            vm: rates::group_summary(dataset, MachineKind::Vm, Some(meta.id())),
        })
        .collect();
    Robust::complete(rates::WeeklyFailureRates {
        all_pm,
        all_vm,
        per_subsystem,
    })
}

/// Fig. 3 inter-failure analysis that explains an absent fit.
///
/// Completeness is the gap sample size relative to the fitting floor
/// (clamped to 1.0), so a recovered dataset that lost most repeat failures
/// shows up as partially complete rather than as a silent `None`.
pub fn interfailure_robust(
    dataset: &FailureDataset,
    kind: MachineKind,
) -> Robust<interfailure::InterFailureAnalysis> {
    let n_gaps = interfailure::per_server_gaps_days(dataset, Some(kind), None).len();
    let completeness = (n_gaps as f64 / FIT_FLOOR as f64).min(1.0);
    match interfailure::analyze(dataset, kind) {
        Some(analysis) => Robust::complete(analysis),
        None => Robust::unavailable(
            completeness,
            vec![Caveat::new(
                "too-few-gaps",
                format!("{kind} inter-failure fit unavailable: {n_gaps} gaps, need {FIT_FLOOR}"),
            )],
        ),
    }
}

/// Fig. 4 repair-time analysis that explains an absent fit.
///
/// Completeness is the repair sample size relative to the fitting floor
/// (clamped to 1.0).
pub fn repair_robust(
    dataset: &FailureDataset,
    kind: MachineKind,
) -> Robust<repair::RepairAnalysis> {
    let n_repairs = repair::repair_hours(dataset, kind).len();
    let completeness = (n_repairs as f64 / FIT_FLOOR as f64).min(1.0);
    match repair::analyze(dataset, kind) {
        Some(analysis) => Robust::complete(analysis),
        None => Robust::unavailable(
            completeness,
            vec![Caveat::new(
                "too-few-repairs",
                format!(
                    "{kind} repair-time fit unavailable: {n_repairs} repairs, need {FIT_FLOOR}"
                ),
            )],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn robust_matches_strict_on_healthy_data() {
        let ds = testutil::dataset();
        let fig2 = weekly_failure_rates_robust(ds);
        assert!(fig2.is_complete());
        let strict = rates::weekly_failure_rates(ds);
        assert_eq!(fig2.value.unwrap(), strict);
        for kind in [MachineKind::Pm, MachineKind::Vm] {
            assert!(interfailure_robust(ds, kind).is_complete());
            assert!(repair_robust(ds, kind).is_complete());
        }
    }

    #[test]
    fn missing_estate_group_degrades_instead_of_panicking() {
        // A dataset with machines but zero events: every estimator must
        // come back unavailable with caveats, not panic.
        let mut topo = Topology::new();
        topo.add_subsystem(SubsystemMeta::new(SubsystemId::new(0), "Sys I"));
        let mut b = DatasetBuilder::new();
        b.topology(topo);
        b.add_machine(Machine::new_pm(
            MachineId::new(0),
            SubsystemId::new(0),
            PowerDomainId::new(0),
            ResourceCapacity::default(),
            None,
        ));
        let ds = b.build();

        let fig2 = weekly_failure_rates_robust(&ds);
        assert!(fig2.value.is_none());
        assert_eq!(fig2.completeness, 0.0);
        assert_eq!(fig2.caveats.len(), 2);
        assert!(fig2.caveats.iter().any(|c| c.code == "no-pm-failures"));

        let inter = interfailure_robust(&ds, MachineKind::Vm);
        assert!(inter.value.is_none());
        assert_eq!(inter.completeness, 0.0);
        assert!(inter.caveats[0].message.contains("need 10"));

        let rep = repair_robust(&ds, MachineKind::Pm);
        assert!(rep.value.is_none());
        assert!(!rep.caveats.is_empty());

        assert_eq!(rates::mtbf_days(&ds, MachineKind::Pm), None);
    }

    #[test]
    fn mtbf_is_finite_and_sane_on_healthy_data() {
        let ds = testutil::dataset();
        for kind in [MachineKind::Pm, MachineKind::Vm] {
            let mtbf = rates::mtbf_days(ds, kind).unwrap();
            assert!(mtbf.is_finite() && mtbf > 0.0);
        }
        // PMs fail more often per machine → shorter MTBF.
        let pm = rates::mtbf_days(ds, MachineKind::Pm).unwrap();
        let vm = rates::mtbf_days(ds, MachineKind::Vm).unwrap();
        assert!(pm < vm, "pm {pm} vs vm {vm}");
    }
}
