//! Spatial (in)dependency of failures (Tables VI, VII).
//!
//! A failure *incident* can take down several servers at once — a power
//! outage, a host-platform crash, a distributed-software fault. Table VI
//! censuses incident footprints (how many incidents involve 0/1/≥2 PMs or
//! VMs); Table VII breaks mean/max footprint down by root cause.

use crate::ClassSource;
use dcfail_model::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Table VI: percentage of incidents involving zero, one, or ≥ 2 servers of
/// a type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Share of incidents with no server of the type (percent).
    pub zero_pct: f64,
    /// Share with exactly one (percent).
    pub one_pct: f64,
    /// Share with two or more (percent).
    pub two_plus_pct: f64,
}

/// The full Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table6 {
    /// Counting PMs and VMs together (zero is impossible by construction).
    pub both: Table6Row,
    /// Counting only PMs.
    pub pm_only: Table6Row,
    /// Counting only VMs.
    pub vm_only: Table6Row,
}

impl Table6Row {
    fn from_counts(zero: usize, one: usize, two_plus: usize) -> Self {
        let total = (zero + one + two_plus).max(1) as f64;
        Self {
            zero_pct: 100.0 * zero as f64 / total,
            one_pct: 100.0 * one as f64 / total,
            two_plus_pct: 100.0 * two_plus as f64 / total,
        }
    }

    /// The paper's dependent-failure metric: of the incidents touching at
    /// least one server of the type, the share touching two or more
    /// (≈ 26% for VMs, ≈ 16% for PMs).
    pub fn dependent_share(&self) -> f64 {
        let touched = self.one_pct + self.two_plus_pct;
        if touched == 0.0 {
            0.0
        } else {
            self.two_plus_pct / touched
        }
    }
}

/// Computes Table VI over all incidents.
pub fn table6(dataset: &FailureDataset) -> Table6 {
    let mut both = (0usize, 0usize, 0usize);
    let mut pm = (0usize, 0usize, 0usize);
    let mut vm = (0usize, 0usize, 0usize);
    for inc in dataset.incidents() {
        let pms = inc
            .machines()
            .iter()
            .filter(|m| dataset.machine(**m).is_pm())
            .count();
        let vms = inc.size() - pms;
        let bump = |acc: &mut (usize, usize, usize), n: usize| match n {
            0 => acc.0 += 1,
            1 => acc.1 += 1,
            _ => acc.2 += 1,
        };
        bump(&mut both, inc.size());
        bump(&mut pm, pms);
        bump(&mut vm, vms);
    }
    Table6 {
        both: Table6Row::from_counts(both.0, both.1, both.2),
        pm_only: Table6Row::from_counts(pm.0, pm.1, pm.2),
        vm_only: Table6Row::from_counts(vm.0, vm.1, vm.2),
    }
}

/// Table VII: mean and max incident footprint per failure class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintStats {
    /// Mean number of servers per incident.
    pub mean: f64,
    /// Maximum number of servers in one incident.
    pub max: usize,
    /// Number of incidents of the class.
    pub incidents: usize,
}

/// Reported class of an incident: the majority label among its events
/// (pipeline view), or the ground-truth class.
pub fn incident_class(
    dataset: &FailureDataset,
    incident: &Incident,
    source: ClassSource,
) -> FailureClass {
    match source {
        ClassSource::Truth => incident.class(),
        ClassSource::Reported => {
            let mut votes = [0usize; 6];
            for ev in dataset.events_for_incident(incident.id()) {
                votes[ev.reported_class().index()] += 1;
            }
            FailureClass::from_index((0..6).max_by_key(|&c| votes[c]).expect("six classes"))
        }
    }
}

/// Computes Table VII, dense by [`FailureClass::index`]; `None` for classes
/// with no incidents.
pub fn table7(dataset: &FailureDataset, source: ClassSource) -> [Option<FootprintStats>; 6] {
    // The reported view votes over each incident's events via the dataset's
    // per-incident index — no full event scan per incident.
    let mut sizes: [Vec<usize>; 6] = Default::default();
    for inc in dataset.incidents() {
        let class = incident_class(dataset, inc, source);
        sizes[class.index()].push(inc.size());
    }
    let mut out = [None; 6];
    for class in FailureClass::ALL {
        let s = &sizes[class.index()];
        if s.is_empty() {
            continue;
        }
        out[class.index()] = Some(FootprintStats {
            mean: s.iter().sum::<usize>() as f64 / s.len() as f64,
            max: *s.iter().max().expect("non-empty"),
            incidents: s.len(),
        });
    }
    out
}

/// Empirical distribution of incident footprints: `(size, count)` sorted by
/// size.
pub fn incident_size_distribution(dataset: &FailureDataset) -> Vec<(usize, usize)> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for inc in dataset.incidents() {
        *counts.entry(inc.size()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn most_incidents_are_singletons_with_a_multi_tail() {
        let ds = testutil::dataset();
        let t6 = table6(ds);
        // Counting both types, zero is impossible.
        assert_eq!(t6.both.zero_pct, 0.0);
        // Paper: 78% single, 22% multi — our generator produces a smaller
        // but clearly present multi tail.
        assert!(t6.both.one_pct > 60.0, "one {}", t6.both.one_pct);
        assert!(
            t6.both.two_plus_pct > 4.0 && t6.both.two_plus_pct < 40.0,
            "two+ {}",
            t6.both.two_plus_pct
        );
        let sum = t6.both.zero_pct + t6.both.one_pct + t6.both.two_plus_pct;
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn vms_show_stronger_spatial_dependency_than_pms() {
        let ds = testutil::dataset();
        let t6 = table6(ds);
        // Paper: ~26% of VM-touching incidents involve ≥2 VMs vs ~16% for
        // PMs (consolidation: a host crash fails several co-hosted VMs).
        assert!(
            t6.vm_only.dependent_share() > t6.pm_only.dependent_share(),
            "vm {} vs pm {}",
            t6.vm_only.dependent_share(),
            t6.pm_only.dependent_share()
        );
    }

    #[test]
    fn power_has_largest_mean_footprint() {
        let ds = testutil::dataset();
        let t7 = table7(ds, ClassSource::Truth);
        let power = t7[FailureClass::Power.index()].expect("power incidents");
        for class in [
            FailureClass::Hardware,
            FailureClass::Network,
            FailureClass::Reboot,
            FailureClass::Software,
        ] {
            if let Some(stats) = t7[class.index()] {
                assert!(
                    power.mean > stats.mean,
                    "power {} vs {class} {}",
                    power.mean,
                    stats.mean
                );
            }
        }
        // Paper: power mean 2.7, max 21; ours should be > 1.5 with a tail.
        assert!(power.mean > 1.5, "power mean {}", power.mean);
        assert!(power.max >= 4, "power max {}", power.max);
    }

    #[test]
    fn reboot_mean_is_small_but_max_is_large() {
        let ds = testutil::dataset();
        let t7 = table7(ds, ClassSource::Truth);
        let reboot = t7[FailureClass::Reboot.index()].expect("reboot incidents");
        // Paper: mean 1.1 (mostly individual reboots) but max 15 (host
        // platform crashes).
        assert!(reboot.mean < 1.5, "reboot mean {}", reboot.mean);
        assert!(reboot.max >= 3, "reboot max {}", reboot.max);
    }

    #[test]
    fn reported_view_routes_degraded_incidents_to_other() {
        let ds = testutil::dataset();
        let t7 = table7(ds, ClassSource::Reported);
        let other = t7[FailureClass::Other.index()].expect("other incidents");
        // About half the tickets are degraded, so Other dominates counts.
        assert!(other.incidents > 100);
        // Truth view has no Other incidents.
        let truth = table7(ds, ClassSource::Truth);
        assert!(truth[FailureClass::Other.index()].is_none());
    }

    #[test]
    fn size_distribution_accounts_for_all_incidents() {
        let ds = testutil::dataset();
        let dist = incident_size_distribution(ds);
        let total: usize = dist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, ds.incidents().len());
        // Sorted by size, starting at 1.
        assert_eq!(dist[0].0, 1);
        for pair in dist.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn incident_class_majority_vote() {
        let ds = testutil::tiny();
        let inc = &ds.incidents()[0];
        let reported = incident_class(ds, inc, ClassSource::Reported);
        let truth = incident_class(ds, inc, ClassSource::Truth);
        assert_eq!(truth, inc.class());
        // Reported is one of the six classes.
        assert!(FailureClass::ALL.contains(&reported));
    }
}
