//! Ticket distribution across failure classes (Fig. 1).
//!
//! Fig. 1 shows, per subsystem, the share of crash tickets in each of the
//! five *classified* root-cause classes, excluding the unclassifiable
//! "other" tickets (53% of the dataset, reported separately).

use crate::ClassSource;
use dcfail_model::prelude::*;
use serde::{Deserialize, Serialize};

/// Class shares for one subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemClassMix {
    /// Subsystem name.
    pub name: String,
    /// Crash tickets per class (dense by [`FailureClass::index`]).
    pub counts: [usize; 6],
    /// Share of each *classified* class among classified tickets, dense by
    /// class index; the `Other` slot holds 0.
    pub classified_shares: [f64; 6],
    /// Share of "other" tickets among all crash tickets.
    pub other_share: f64,
}

/// The full Fig. 1 plus the headline "other" shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Per-subsystem mixes, in subsystem order.
    pub per_subsystem: Vec<SubsystemClassMix>,
    /// Estate-wide mix.
    pub overall: SubsystemClassMix,
}

fn mix_of(name: &str, counts: [usize; 6]) -> SubsystemClassMix {
    let total: usize = counts.iter().sum();
    let other = counts[FailureClass::Other.index()];
    let classified_total = total - other;
    let mut classified_shares = [0.0; 6];
    if classified_total > 0 {
        for class in FailureClass::CLASSIFIED {
            classified_shares[class.index()] =
                counts[class.index()] as f64 / classified_total as f64;
        }
    }
    SubsystemClassMix {
        name: name.to_string(),
        counts,
        classified_shares,
        other_share: if total == 0 {
            0.0
        } else {
            other as f64 / total as f64
        },
    }
}

/// Computes Fig. 1 from a dataset's failure events.
pub fn class_mix(dataset: &FailureDataset, source: ClassSource) -> ClassMix {
    let num_sys = dataset.topology().subsystems().len();
    let mut per_sys = vec![[0usize; 6]; num_sys];
    let mut overall = [0usize; 6];
    for ev in dataset.events() {
        let class = source.class_of(ev);
        let sys = dataset.machine(ev.machine()).subsystem().index();
        per_sys[sys][class.index()] += 1;
        overall[class.index()] += 1;
    }
    ClassMix {
        per_subsystem: dataset
            .topology()
            .subsystems()
            .iter()
            .map(|meta| mix_of(meta.name(), per_sys[meta.id().index()]))
            .collect(),
        overall: mix_of("All", overall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn other_share_is_roughly_the_degraded_fraction() {
        let mix = class_mix(testutil::dataset(), ClassSource::Reported);
        // Paper: 53% of crash tickets are unclassifiable.
        assert!(
            (mix.overall.other_share - 0.53).abs() < 0.08,
            "other share {}",
            mix.overall.other_share
        );
        // Ground truth has no Other class at all.
        let truth = class_mix(testutil::dataset(), ClassSource::Truth);
        assert_eq!(truth.overall.counts[FailureClass::Other.index()], 0);
        assert_eq!(truth.overall.other_share, 0.0);
    }

    #[test]
    fn software_and_reboot_dominate_classified_tickets() {
        let mix = class_mix(testutil::dataset(), ClassSource::Reported);
        let shares = mix.overall.classified_shares;
        let sw = shares[FailureClass::Software.index()];
        let reboot = shares[FailureClass::Reboot.index()];
        let power = shares[FailureClass::Power.index()];
        assert!(sw > 0.2, "software share {sw}");
        assert!(reboot > 0.2, "reboot share {reboot}");
        // Power is a minor cause overall.
        assert!(power < 0.15, "power share {power}");
        // Classified shares sum to 1.
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sys5_is_power_heavy_and_sys3_power_free() {
        let mix = class_mix(testutil::dataset(), ClassSource::Truth);
        let power = |i: usize| mix.per_subsystem[i].classified_shares[FailureClass::Power.index()];
        assert_eq!(power(2), 0.0, "Sys III must have no power failures");
        for i in [0usize, 1, 3] {
            assert!(
                power(4) > power(i),
                "Sys V power share {} should top Sys {} ({})",
                power(4),
                i + 1,
                power(i)
            );
        }
        // Paper: Sys V power ≈ 29% of classified.
        assert!(
            power(4) > 0.10 && power(4) < 0.45,
            "Sys V power {}",
            power(4)
        );
    }

    #[test]
    fn counts_sum_to_event_total() {
        let ds = testutil::dataset();
        let mix = class_mix(ds, ClassSource::Reported);
        let total: usize = mix.overall.counts.iter().sum();
        assert_eq!(total, ds.events().len());
        let per_sys_total: usize = mix
            .per_subsystem
            .iter()
            .map(|s| s.counts.iter().sum::<usize>())
            .sum();
        assert_eq!(per_sys_total, total);
    }

    #[test]
    fn empty_mix_is_all_zero() {
        let m = mix_of("empty", [0; 6]);
        assert_eq!(m.other_share, 0.0);
        assert!(m.classified_shares.iter().all(|&s| s == 0.0));
    }
}
