//! Inter-failure times (Fig. 3, Table III).
//!
//! Two views, as in the paper: the **single-server view** (gaps between
//! consecutive failures of the same machine; servers failing once contribute
//! nothing) and the **operator view** (gaps between consecutive failures of
//! a class anywhere in the estate).

use crate::ClassSource;
use dcfail_model::prelude::*;
use dcfail_stats::empirical::{Ecdf, Summary};
use dcfail_stats::fit::{Family, ModelSelection};
use dcfail_stats::gof::{ks_test, KsTest};
use dcfail_stats::survival::{KaplanMeier, Observation};
use serde::{Deserialize, Serialize};

/// Fig. 3 for one machine kind: the gap sample, its ECDF, the fitted model
/// ranking and context statistics.
#[derive(Debug, Clone)]
pub struct InterFailureAnalysis {
    /// Per-server inter-failure gaps in days.
    pub gaps_days: Vec<f64>,
    /// ECDF of the gaps.
    pub ecdf: Ecdf,
    /// MLE fits of the paper's candidate families, ranked by log-likelihood.
    pub fits: ModelSelection,
    /// KS test of the winning fit.
    pub best_fit_ks: KsTest,
    /// Mean gap in days (the paper quotes 37.22 days for VMs).
    pub mean_days: f64,
    /// Fraction of failing servers with exactly one failure (the paper:
    /// ~60% of VMs fail once, contributing no gaps).
    pub single_failure_fraction: f64,
}

/// Per-server inter-failure gaps in days for one machine kind, optionally
/// restricted to one failure class.
pub fn per_server_gaps_days(
    dataset: &FailureDataset,
    kind: Option<MachineKind>,
    class: Option<(FailureClass, ClassSource)>,
) -> Vec<f64> {
    let mut gaps = Vec::new();
    for (machine, _) in dataset.failing_machines() {
        if let Some(k) = kind {
            if dataset.machine(machine).kind() != k {
                continue;
            }
        }
        let mut prev: Option<SimTime> = None;
        for ev in dataset.events_for(machine) {
            if let Some((c, source)) = class {
                if source.class_of(ev) != c {
                    continue;
                }
            }
            if let Some(p) = prev {
                let gap = (ev.at() - p).as_days();
                if gap > 0.0 {
                    gaps.push(gap);
                }
            }
            prev = Some(ev.at());
        }
    }
    gaps
}

/// Operator-view gaps in days: time between consecutive failures of `class`
/// anywhere in the estate.
pub fn operator_gaps_days(
    dataset: &FailureDataset,
    class: FailureClass,
    source: ClassSource,
) -> Vec<f64> {
    let mut gaps = Vec::new();
    let mut prev: Option<SimTime> = None;
    for ev in dataset.events() {
        if source.class_of(ev) != class {
            continue;
        }
        if let Some(p) = prev {
            let gap = (ev.at() - p).as_days();
            if gap > 0.0 {
                gaps.push(gap);
            }
        }
        prev = Some(ev.at());
    }
    gaps
}

/// Runs the Fig. 3 analysis for one machine kind.
///
/// # Errors
///
/// Returns `None` when there are not enough gaps to fit (fewer than 10).
pub fn analyze(dataset: &FailureDataset, kind: MachineKind) -> Option<InterFailureAnalysis> {
    let gaps = per_server_gaps_days(dataset, Some(kind), None);
    if gaps.len() < 10 {
        return None;
    }
    let fits = ModelSelection::fit(&gaps, &Family::ALL).ok()?;
    let best_fit_ks = ks_test(&gaps, fits.best().dist.as_dist()).ok()?;
    let mean_days = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let (total_failing, single) = dataset
        .failing_machines()
        .filter(|&(m, _)| dataset.machine(m).kind() == kind)
        .fold((0usize, 0usize), |(t, s), (_, count)| {
            (t + 1, s + usize::from(count == 1))
        });
    Some(InterFailureAnalysis {
        ecdf: Ecdf::new(&gaps),
        best_fit_ks,
        mean_days,
        single_failure_fraction: if total_failing == 0 {
            0.0
        } else {
            single as f64 / total_failing as f64
        },
        fits,
        gaps_days: gaps,
    })
}

/// Censoring-aware inter-failure analysis.
///
/// The paper notes it "collect[s] no inter-failure times for servers that
/// only fail once" — but those servers carry information: they survived
/// from their (only) failure to the end of the window without failing
/// again. Treating that span as a right-censored observation and running
/// Kaplan–Meier gives an unbiased survival curve; comparing its median to
/// the naive gaps-only median quantifies the paper's bias.
#[derive(Debug, Clone)]
pub struct CensoredInterFailure {
    /// The fitted survival curve over gap days.
    pub km: KaplanMeier,
    /// Naive median of observed gaps only (the paper's estimator).
    pub naive_median_days: Option<f64>,
    /// KM median gap, when the curve reaches 0.5.
    pub km_median_days: Option<f64>,
    /// Share of observations that are censored (single-failure tails).
    pub censored_share: f64,
}

/// Runs the censoring-aware analysis for one machine kind; `None` with
/// fewer than 10 events.
pub fn analyze_censored(
    dataset: &FailureDataset,
    kind: MachineKind,
) -> Option<CensoredInterFailure> {
    let mut observations = Vec::new();
    let mut gaps = Vec::new();
    let end = dataset.horizon().end();
    for (machine, _) in dataset.failing_machines() {
        if dataset.machine(machine).kind() != kind {
            continue;
        }
        let times: Vec<SimTime> = dataset.events_for(machine).map(FailureEvent::at).collect();
        for pair in times.windows(2) {
            let gap = (pair[1] - pair[0]).as_days();
            if gap > 0.0 {
                observations.push(Observation::event(gap));
                gaps.push(gap);
            }
        }
        // The span from the last failure to the window end is censored.
        if let Some(&last) = times.last() {
            let tail = (end - last).as_days();
            if tail > 0.0 {
                observations.push(Observation::censored(tail));
            }
        }
    }
    if observations.len() < 10 {
        return None;
    }
    let km = KaplanMeier::fit(&observations).ok()?;
    let naive_median_days = Summary::of(&gaps).map(|s| s.median);
    Some(CensoredInterFailure {
        km_median_days: km.median(),
        censored_share: km.n_censored() as f64 / km.n() as f64,
        naive_median_days,
        km,
    })
}

/// One row pair of Table III: mean and median gap days per class for both
/// views.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassGapStats {
    /// Operator view: gaps between failures of the class estate-wide.
    pub operator: Option<GapStats>,
    /// Single-server view: per-server gaps within the class.
    pub server: Option<GapStats>,
}

/// Mean/median gap statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapStats {
    /// Mean gap in days.
    pub mean: f64,
    /// Median gap in days.
    pub median: f64,
    /// Number of gaps.
    pub n: usize,
}

impl GapStats {
    fn of(gaps: &[f64]) -> Option<Self> {
        let s = Summary::of(gaps)?;
        Some(Self {
            mean: s.mean,
            median: s.median,
            n: s.n,
        })
    }
}

/// Computes Table III: per-class inter-failure times from both views,
/// dense by [`FailureClass::index`].
pub fn table3(dataset: &FailureDataset, source: ClassSource) -> [ClassGapStats; 6] {
    let mut out = [ClassGapStats {
        operator: None,
        server: None,
    }; 6];
    for class in FailureClass::ALL {
        let operator = operator_gaps_days(dataset, class, source);
        let server = per_server_gaps_days(dataset, None, Some((class, source)));
        out[class.index()] = ClassGapStats {
            operator: GapStats::of(&operator),
            server: GapStats::of(&server),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn gamma_fits_well_and_failures_are_not_memoryless() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let a = analyze(ds, kind).expect("enough gaps");
            // The paper's headline: inter-failure times are NOT exponential
            // and the heavy-tail families (Gamma in particular) fit well.
            let best = a.fits.best();
            assert_ne!(best.dist.family(), Family::Exponential, "{kind}");
            let gamma = a.fits.for_family(Family::Gamma).expect("gamma fitted");
            let expo = a.fits.for_family(Family::Exponential).expect("expo fitted");
            assert!(
                gamma.log_likelihood > expo.log_likelihood,
                "{kind}: gamma {} vs exponential {}",
                gamma.log_likelihood,
                expo.log_likelihood
            );
            // Gamma stays in the same ballpark as the winning family. (On
            // our synthetic gaps Log-normal/Weibull edge Gamma out by
            // ~0.1–0.2 nats per gap — the simulator's day-granular
            // recurrence clock bounds burst gaps away from zero, which the
            // paper's event-granular data does not; see EXPERIMENTS.md.)
            let gap = (best.log_likelihood - gamma.log_likelihood).abs();
            assert!(
                gap <= 0.25 * a.fits.n as f64,
                "{kind}: gamma trails best by {gap} over {} gaps",
                a.fits.n
            );
            // VM mean inter-failure ≈ 37 days in the paper; accept a band.
            assert!(
                a.mean_days > 10.0 && a.mean_days < 120.0,
                "{kind}: mean gap {}",
                a.mean_days
            );
            // Burstiness ⇒ fitted gamma shape < 1.
            if let dcfail_stats::fit::FittedDist::Gamma(g) = gamma.dist {
                assert!(g.shape() < 1.2, "{kind}: gamma shape {}", g.shape());
            }
        }
    }

    #[test]
    fn majority_of_failing_vms_fail_once() {
        let ds = testutil::dataset();
        let a = analyze(ds, MachineKind::Vm).unwrap();
        // Paper: roughly 60% of VMs have only a single failure.
        assert!(
            a.single_failure_fraction > 0.4 && a.single_failure_fraction < 0.8,
            "single-failure fraction {}",
            a.single_failure_fraction
        );
    }

    #[test]
    fn ecdf_covers_gap_range() {
        let ds = testutil::dataset();
        let a = analyze(ds, MachineKind::Pm).unwrap();
        assert_eq!(a.ecdf.len(), a.gaps_days.len());
        assert!(a.gaps_days.iter().all(|&g| g > 0.0));
        assert_eq!(a.ecdf.eval(f64::MAX), 1.0);
    }

    #[test]
    fn table3_operator_gaps_are_much_shorter_than_server_gaps() {
        let ds = testutil::dataset();
        let t3 = table3(ds, ClassSource::Reported);
        // For the high-volume classes the estate sees failures far more
        // often than any single server does. (For sparse classes like
        // network, our per-server gaps are burst-dominated, so the contrast
        // is only guaranteed where the paper's is strongest.)
        for class in [
            FailureClass::Software,
            FailureClass::Reboot,
            FailureClass::Other,
        ] {
            let stats = t3[class.index()];
            let (Some(op), Some(srv)) = (stats.operator, stats.server) else {
                continue;
            };
            assert!(
                op.mean < srv.mean,
                "{class}: operator {} vs server {}",
                op.mean,
                srv.mean
            );
        }
        // In aggregate the effect is enormous: estate-wide consecutive
        // failures are hours apart, per-server gaps are weeks apart.
        let all_operator: Vec<f64> = {
            let mut prev: Option<f64> = None;
            let mut gaps = Vec::new();
            for ev in ds.events() {
                let t = ev.at().as_days();
                if let Some(p) = prev {
                    if t > p {
                        gaps.push(t - p);
                    }
                }
                prev = Some(t);
            }
            gaps
        };
        let op_mean = all_operator.iter().sum::<f64>() / all_operator.len() as f64;
        let srv = per_server_gaps_days(ds, None, None);
        let srv_mean = srv.iter().sum::<f64>() / srv.len() as f64;
        assert!(op_mean * 10.0 < srv_mean, "op {op_mean} vs srv {srv_mean}");
    }

    #[test]
    fn software_is_least_reliable_classified_class_for_operators() {
        let ds = testutil::dataset();
        let t3 = table3(ds, ClassSource::Truth);
        let sw = t3[FailureClass::Software.index()].operator.unwrap();
        let hw = t3[FailureClass::Hardware.index()].operator.unwrap();
        let net = t3[FailureClass::Network.index()].operator.unwrap();
        // Paper: software gaps are shortest (2.84 d), network longest
        // (10.27 d) among classified classes.
        assert!(sw.mean < hw.mean, "sw {} vs hw {}", sw.mean, hw.mean);
        assert!(sw.mean < net.mean, "sw {} vs net {}", sw.mean, net.mean);
    }

    #[test]
    fn censored_analysis_corrects_the_naive_bias() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let c = analyze_censored(ds, kind).expect("enough observations");
            // Most failing servers fail once ⇒ censoring dominates.
            assert!(
                c.censored_share > 0.4,
                "{kind}: censored share {}",
                c.censored_share
            );
            // The KM median (when reached) must exceed the naive gaps-only
            // median: dropping survivors biases gaps downward.
            if let (Some(km), Some(naive)) = (c.km_median_days, c.naive_median_days) {
                assert!(km >= naive, "{kind}: KM median {km} vs naive {naive}");
            }
            // Survival curve is a proper survival curve.
            assert!(c.km.survival_at(0.0) <= 1.0);
            assert!(c.km.survival_at(1e9) >= 0.0);
        }
    }

    #[test]
    fn gaps_are_positive_and_within_horizon() {
        let ds = testutil::tiny();
        let gaps = per_server_gaps_days(ds, None, None);
        assert!(gaps.iter().all(|&g| g > 0.0 && g < 365.0));
    }

    #[test]
    fn analyze_returns_none_for_missing_population() {
        // A dataset with almost no events per kind: use class filter that
        // yields nothing instead.
        let ds = testutil::tiny();
        let gaps = per_server_gaps_days(
            ds,
            Some(MachineKind::Vm),
            Some((FailureClass::Power, ClassSource::Truth)),
        );
        // Few or no power gaps on VMs in a tiny run; at minimum the call is
        // well-formed and nonnegative.
        assert!(gaps.iter().all(|&g| g > 0.0));
    }
}
