//! Failure rate vs VM on/off frequency (Fig. 10).
//!
//! On/off frequencies are counted from the 15-minute power samples over the
//! two-month telemetry window (the paper's March–April slice) and assumed
//! representative of the whole year.

use crate::curve::{rate_and_share_by_machine, AttributeCurve};
use dcfail_model::prelude::*;
use dcfail_stats::binning::Bins;

/// Bins for monthly on/off transition counts (Fig. 10). The top bin is
/// genuinely open-ended: a VM cycling more than 64 times a month is an "8+"
/// machine, not a silently dropped one.
pub fn onoff_bins() -> Bins {
    Bins::open_last(vec![0.0, 1.0, 2.0, 4.0, 8.0])
}

/// Both Fig. 10 panels — the rate curve and the VM population shares — from
/// one pass: per-VM transition rates come from the telemetry store's single
/// bulk pass and each VM is binned exactly once.
pub fn fig10_parts(dataset: &FailureDataset) -> (AttributeCurve, Vec<(String, f64)>) {
    let bins = onoff_bins();
    let rates = dataset.telemetry().monthly_transition_rates();
    rate_and_share_by_machine(dataset, "on/off per month", &bins, MachineKind::Vm, |m| {
        // The bulk pass is sorted by machine id.
        rates
            .binary_search_by_key(&m.id(), |&(id, _)| id)
            .ok()
            .map(|i| rates[i].1)
    })
}

/// Fig. 10: weekly VM failure rate vs monthly on/off frequency.
pub fn rate_by_onoff(dataset: &FailureDataset) -> AttributeCurve {
    fig10_parts(dataset).0
}

/// Distribution of VMs across on/off-frequency bins: `(label, share)`.
pub fn vm_share_by_onoff(dataset: &FailureDataset) -> Vec<(String, f64)> {
    fig10_parts(dataset).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn rate_rises_to_two_per_month_then_flattens() {
        let curve = rate_by_onoff(testutil::dataset());
        let stable = curve.mean_of("0-1").unwrap();
        let cycled = curve.mean_of("1-2").or(curve.mean_of("2-4")).unwrap();
        // Paper: increasing trend from 0 to ~2 toggles/month...
        assert!(cycled > stable, "cycled {cycled} vs stable {stable}");
        // ...but no deterioration for heavy cycling: the 8+ bucket is not
        // dramatically worse than the 2-4 bucket.
        if let (Some(mid), Some(heavy)) = (curve.mean_of("2-4"), curve.mean_of("8+")) {
            assert!(
                heavy < 1.8 * mid,
                "heavy cycling {heavy} should not blow past mid {mid}"
            );
        }
    }

    #[test]
    fn most_vms_rarely_power_cycle() {
        let shares = vm_share_by_onoff(testutil::dataset());
        let stable = shares
            .iter()
            .find(|(l, _)| l == "0-1")
            .map(|&(_, s)| s)
            .unwrap();
        let heavy = shares
            .iter()
            .find(|(l, _)| l == "8+")
            .map_or(0.0, |&(_, s)| s);
        // Paper: 60% ≤ 1/month, 14% ≥ 8/month.
        assert!((stable - 0.60).abs() < 0.15, "stable share {stable}");
        assert!(heavy > 0.03 && heavy < 0.30, "heavy share {heavy}");
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn only_vms_contribute() {
        let curve = rate_by_onoff(testutil::dataset());
        let mw: usize = curve.points.iter().map(|p| p.machine_weeks).sum();
        let vms = testutil::dataset().population(MachineKind::Vm, None);
        assert_eq!(mw, vms * 52);
    }
}
