//! Temporal dependency of failures.
//!
//! "The main building blocks of our analysis are ... the time and space
//! dependency of failures" (§I). Recurrence (Table V) measures time
//! dependency per machine; this module measures it at the estate level — the
//! autocorrelation of the daily failure-count series — and as the empirical
//! post-failure hazard h(d): the probability a machine fails again exactly
//! `d` days after a failure, given it survived that long. The hazard curve
//! exposes the burst-decay structure that Table V only summarizes.

use dcfail_model::prelude::*;
use dcfail_stats::corr::{autocorrelation, ljung_box};
use serde::{Deserialize, Serialize};

/// Estate-level temporal-dependency analysis of the daily failure counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalDependence {
    /// Autocorrelation of the daily failure-count series at lags 0..=14.
    pub acf: Vec<f64>,
    /// Ljung–Box Q over lags 1..=7 (white-noise null ≈ χ²(7), 5% ≈ 14.1).
    pub ljung_box_q: f64,
    /// Index of dispersion (variance / mean) of the daily counts. A Poisson
    /// (memoryless, independent) estate gives 1; same-day clustering from
    /// multi-machine incidents and recurrence bursts pushes it above. For a
    /// 364-day year the one-sided 5% significance threshold is ≈ 1.13.
    pub dispersion_index: f64,
    /// Days with at least one failure.
    pub active_days: usize,
}

/// Computes the daily failure counts of a machine kind.
pub fn daily_counts(dataset: &FailureDataset, kind: MachineKind) -> Vec<f64> {
    let mut counts = vec![0.0; dataset.horizon().num_days()];
    for ev in dataset.events() {
        if dataset.machine(ev.machine()).kind() != kind {
            continue;
        }
        if let Some(d) = dataset.horizon().day_of(ev.at()) {
            counts[d] += 1.0;
        }
    }
    counts
}

/// Runs the estate-level analysis; `None` when the series is degenerate.
pub fn analyze(dataset: &FailureDataset, kind: MachineKind) -> Option<TemporalDependence> {
    let counts = daily_counts(dataset, kind);
    let acf = autocorrelation(&counts, 14).ok()?;
    let ljung_box_q = ljung_box(&counts, 7).ok()?;
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (n - 1.0);
    if mean == 0.0 {
        return None;
    }
    Some(TemporalDependence {
        acf,
        ljung_box_q,
        dispersion_index: var / mean,
        active_days: counts.iter().filter(|&&c| c > 0.0).count(),
    })
}

/// One step of the empirical post-failure hazard curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HazardStep {
    /// Days since the previous failure (1-based).
    pub day: usize,
    /// P(fail on this day | survived to it).
    pub hazard: f64,
    /// Machines still at risk entering this day.
    pub at_risk: usize,
}

/// Empirical discrete hazard of re-failing `d` days after a failure, for
/// `d = 1..=max_days`. Spans reaching the window end count as censored (they
/// leave the risk set without an event).
pub fn empirical_hazard(
    dataset: &FailureDataset,
    kind: MachineKind,
    max_days: usize,
) -> Vec<HazardStep> {
    let end = dataset.horizon().end();
    // Each failure opens a spell: (days-to-next-failure, observed?).
    let mut spells: Vec<(usize, bool)> = Vec::new();
    for (machine, _) in dataset.failing_machines() {
        if dataset.machine(machine).kind() != kind {
            continue;
        }
        let times: Vec<SimTime> = dataset.events_for(machine).map(FailureEvent::at).collect();
        for (i, &t) in times.iter().enumerate() {
            if let Some(&next) = times.get(i + 1) {
                let days = ((next - t).as_days().ceil() as usize).max(1);
                spells.push((days, true));
            } else {
                let days = (end - t).as_days().floor() as usize;
                if days >= 1 {
                    spells.push((days, false));
                }
            }
        }
    }
    let mut out = Vec::with_capacity(max_days);
    for day in 1..=max_days {
        // At risk entering `day`: every spell that lasted at least `day`
        // days, whether it ended in an event or in censoring.
        let at_risk = spells.iter().filter(|&&(d, _)| d >= day).count();
        let events = spells
            .iter()
            .filter(|&&(d, observed)| observed && d == day)
            .count();
        if at_risk == 0 {
            break;
        }
        out.push(HazardStep {
            day,
            hazard: events as f64 / at_risk as f64,
            at_risk,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn daily_counts_cover_all_events() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let counts = daily_counts(ds, kind);
            assert_eq!(counts.len(), 364);
            let total: f64 = counts.iter().sum();
            let expected = ds
                .events()
                .iter()
                .filter(|e| ds.machine(e.machine()).kind() == kind)
                .count() as f64;
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn daily_counts_are_overdispersed() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let t = analyze(ds, kind).expect("non-degenerate series");
            assert_eq!(t.acf.len(), 15);
            assert_eq!(t.acf[0], 1.0);
            // Time dependency at the estate level shows up as same-day
            // clustering (multi-machine incidents, recurrence bursts):
            // variance/mean well above the Poisson 1.0 and its 5% threshold
            // of ~1.13. Serial (day-to-day) correlation is mild — failures
            // are machine-local — so the ACF is reported, not asserted.
            assert!(
                t.dispersion_index > 1.13,
                "{kind}: dispersion {}",
                t.dispersion_index
            );
            assert!(t.ljung_box_q >= 0.0);
            assert!(t.active_days > 200);
        }
    }

    #[test]
    fn post_failure_hazard_decays() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let hz = empirical_hazard(ds, kind, 28);
            assert!(hz.len() >= 14, "{kind}: hazard curve too short");
            // Burst: the first-week hazard dwarfs the late hazard.
            let early: f64 = hz[..3].iter().map(|s| s.hazard).sum::<f64>() / 3.0;
            let late: f64 = hz[13..].iter().map(|s| s.hazard).sum::<f64>() / (hz.len() - 13) as f64;
            assert!(
                early > 5.0 * late,
                "{kind}: early hazard {early} vs late {late}"
            );
            // Risk sets shrink monotonically.
            for pair in hz.windows(2) {
                assert!(pair[0].at_risk >= pair[1].at_risk);
                assert!((0.0..=1.0).contains(&pair[0].hazard));
            }
        }
    }
}
