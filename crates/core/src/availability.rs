//! Server availability.
//!
//! The paper's motivation: "the service availability guaranteed by
//! datacenters heavily depends on the reliability of the physical and
//! virtual servers". This module turns the failure/repair record into the
//! operator's currency — availability and its "nines" — per machine and per
//! group.

use dcfail_model::prelude::*;
use dcfail_stats::empirical::Summary;
use serde::{Deserialize, Serialize};

/// Availability of one machine over the observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineAvailability {
    /// The machine.
    pub machine: MachineId,
    /// Downtime within the window, in hours (overlapping repairs merged).
    pub downtime_hours: f64,
    /// Availability in `[0, 1]`.
    pub availability: f64,
    /// Number of failures.
    pub failures: usize,
}

impl MachineAvailability {
    /// The "number of nines": −log₁₀(1 − availability); `None` for a fully
    /// available machine (infinite nines).
    pub fn nines(&self) -> Option<f64> {
        let u = 1.0 - self.availability;
        (u > 0.0).then(|| -u.log10())
    }
}

/// Computes per-machine availability over the dataset's horizon.
///
/// Repair windows are clipped to the horizon and overlapping windows on the
/// same machine are merged, so availability is well-defined even under
/// recurrent failures whose repairs overlap.
pub fn per_machine(dataset: &FailureDataset) -> Vec<MachineAvailability> {
    let horizon = dataset.horizon();
    let window_hours = horizon.len().as_hours();
    dataset
        .machines()
        .iter()
        .map(|m| {
            // Collect [start, end) downtime intervals, clipped.
            let mut intervals: Vec<(f64, f64)> = dataset
                .events_for(m.id())
                .map(|ev| {
                    let start = ev.at().as_hours().max(horizon.start().as_hours());
                    let end = ev.resolved_at().as_hours().min(horizon.end().as_hours());
                    (start, end)
                })
                .filter(|&(s, e)| e > s)
                .collect();
            // Event order is the explicit tie-break for equal starts: the
            // rounding of the union sum depends on which interval is folded
            // first, so the order must be a total one.
            let indexed: Vec<(usize, (f64, f64))> = {
                let mut v: Vec<_> = intervals.drain(..).enumerate().collect();
                v.sort_unstable_by(|(i, a), (j, b)| a.0.total_cmp(&b.0).then(i.cmp(j)));
                v
            };
            let mut downtime = 0.0;
            let mut cursor = f64::NEG_INFINITY;
            for (_, (s, e)) in indexed {
                let s = s.max(cursor);
                if e > s {
                    downtime += e - s;
                    cursor = e;
                }
            }
            let failures = dataset.events_for(m.id()).count();
            MachineAvailability {
                machine: m.id(),
                downtime_hours: downtime,
                availability: (1.0 - downtime / window_hours).clamp(0.0, 1.0),
                failures,
            }
        })
        .collect()
}

/// Availability summary of a machine group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupAvailability {
    /// Machines in the group.
    pub machines: usize,
    /// Machines with zero downtime.
    pub fully_available: usize,
    /// Mean availability across machines.
    pub mean_availability: f64,
    /// Worst machine's availability.
    pub min_availability: f64,
    /// Mean downtime hours per machine-year.
    pub mean_downtime_hours: f64,
    /// Fleet-level "nines": −log₁₀ of the mean unavailability.
    pub fleet_nines: f64,
}

/// Summarizes availability for one machine kind.
pub fn by_kind(dataset: &FailureDataset, kind: MachineKind) -> Option<GroupAvailability> {
    let per = per_machine(dataset);
    let group: Vec<&MachineAvailability> = per
        .iter()
        .filter(|a| dataset.machine(a.machine).kind() == kind)
        .collect();
    if group.is_empty() {
        return None;
    }
    let availabilities: Vec<f64> = group.iter().map(|a| a.availability).collect();
    let s = Summary::of(&availabilities)?;
    let mean_down = group.iter().map(|a| a.downtime_hours).sum::<f64>() / group.len() as f64;
    let mean_unavailability = (1.0 - s.mean).max(1e-12);
    Some(GroupAvailability {
        machines: group.len(),
        fully_available: group.iter().filter(|a| a.downtime_hours == 0.0).count(),
        mean_availability: s.mean,
        min_availability: s.min,
        mean_downtime_hours: mean_down,
        fleet_nines: -mean_unavailability.log10(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn most_machines_are_fully_available() {
        let ds = testutil::dataset();
        let per = per_machine(ds);
        assert_eq!(per.len(), ds.machines().len());
        let fully = per.iter().filter(|a| a.downtime_hours == 0.0).count();
        // Weekly rate ~0.005 ⇒ ~23% of machines fail in a year ⇒ ≥ 70% never
        // go down.
        assert!(fully as f64 / per.len() as f64 > 0.7);
        for a in &per {
            assert!((0.0..=1.0).contains(&a.availability));
            assert!(a.downtime_hours >= 0.0);
            assert!(a.downtime_hours <= ds.horizon().len().as_hours());
            if a.failures == 0 {
                assert_eq!(a.downtime_hours, 0.0);
                assert!(a.nines().is_none());
            }
        }
    }

    #[test]
    fn vm_fleet_beats_pm_fleet() {
        let ds = testutil::dataset();
        let pm = by_kind(ds, MachineKind::Pm).unwrap();
        let vm = by_kind(ds, MachineKind::Vm).unwrap();
        // VMs fail less *and* repair faster ⇒ higher availability.
        assert!(vm.mean_availability > pm.mean_availability);
        assert!(vm.fleet_nines > pm.fleet_nines);
        assert!(pm.mean_downtime_hours > vm.mean_downtime_hours);
        // Sanity: a commercial fleet delivers at least two nines on average.
        assert!(pm.fleet_nines > 2.0, "PM fleet nines {}", pm.fleet_nines);
        assert!(pm.machines + vm.machines == ds.machines().len());
    }

    #[test]
    fn downtime_merges_overlapping_repairs() {
        // A machine with two overlapping failure windows must not double
        // count. Find one in the dataset if present; otherwise verify the
        // clipping invariant globally.
        let ds = testutil::dataset();
        for a in per_machine(ds) {
            // Downtime can never exceed the wall-clock span of the window.
            assert!(a.downtime_hours <= ds.horizon().len().as_hours() + 1e-9);
        }
    }

    #[test]
    fn nines_math() {
        let a = MachineAvailability {
            machine: MachineId::new(0),
            downtime_hours: 8.736, // 0.1% of a year
            availability: 0.999,
            failures: 1,
        };
        assert!((a.nines().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_kind_returns_none() {
        // Build a dataset view with no machines of a kind by filtering an
        // impossible subsystem — instead simply check Some for both kinds.
        let ds = testutil::tiny();
        assert!(by_kind(ds, MachineKind::Pm).is_some());
        assert!(by_kind(ds, MachineKind::Vm).is_some());
    }
}
