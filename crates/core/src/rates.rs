//! Failure rates (Fig. 2).
//!
//! The weekly failure rate of a group is the number of failures in a week
//! divided by the group's population; Fig. 2 reports the mean and the
//! 25th/75th percentiles of that weekly series for PMs and VMs, over the
//! whole estate and per subsystem.

use dcfail_model::prelude::*;
use dcfail_stats::empirical::Summary;
use serde::{Deserialize, Serialize};

/// Mean and quartiles of a per-period failure-rate series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSummary {
    /// Mean rate per period.
    pub mean: f64,
    /// 25th percentile of the per-period series.
    pub p25: f64,
    /// 75th percentile of the per-period series.
    pub p75: f64,
    /// Population size the rates are normalized by.
    pub n_machines: usize,
    /// Total failure events across the window.
    pub total_events: usize,
}

/// Fig. 2 for one subsystem: PM and VM rate summaries (either may be absent
/// when the population is empty or never fails — Sys II VMs in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemRates {
    /// Subsystem name.
    pub name: String,
    /// PM weekly rate summary.
    pub pm: Option<RateSummary>,
    /// VM weekly rate summary.
    pub vm: Option<RateSummary>,
}

/// The full Fig. 2: estate-wide and per-subsystem weekly failure rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyFailureRates {
    /// All PMs.
    pub all_pm: RateSummary,
    /// All VMs.
    pub all_vm: RateSummary,
    /// Per-subsystem breakdown, in subsystem order.
    pub per_subsystem: Vec<SubsystemRates>,
}

/// Time bucketing for rate series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// Daily buckets.
    Day,
    /// Weekly buckets (the paper's default).
    Week,
    /// 28-day month buckets.
    Month,
}

impl Granularity {
    fn num_buckets(self, horizon: Horizon) -> usize {
        match self {
            Granularity::Day => horizon.num_days(),
            Granularity::Week => horizon.num_weeks(),
            Granularity::Month => horizon.num_months(),
        }
    }

    fn bucket_of(self, horizon: Horizon, t: SimTime) -> Option<usize> {
        match self {
            Granularity::Day => horizon.day_of(t),
            Granularity::Week => horizon.week_of(t),
            Granularity::Month => horizon.month_of(t),
        }
    }
}

/// Per-bucket failure rates of a machine group.
///
/// Returns one rate per period: `events_in_period / population`.
pub fn rate_series(
    dataset: &FailureDataset,
    kind: MachineKind,
    subsystem: Option<SubsystemId>,
    granularity: Granularity,
) -> Vec<f64> {
    let horizon = dataset.horizon();
    let population = dataset.population(kind, subsystem);
    let mut counts = vec![0usize; granularity.num_buckets(horizon)];
    if population == 0 {
        return vec![0.0; counts.len()];
    }
    for ev in dataset.events() {
        let m = dataset.machine(ev.machine());
        if m.kind() != kind || subsystem.is_some_and(|s| m.subsystem() != s) {
            continue;
        }
        if let Some(bucket) = granularity.bucket_of(horizon, ev.at()) {
            counts[bucket] += 1;
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / population as f64)
        .collect()
}

/// Summarizes a rate series into mean and quartiles.
pub fn summarize_series(
    series: &[f64],
    n_machines: usize,
    total_events: usize,
) -> Option<RateSummary> {
    let s = Summary::of(series)?;
    Some(RateSummary {
        mean: s.mean,
        p25: s.p25,
        p75: s.p75,
        n_machines,
        total_events,
    })
}

pub(crate) fn group_summary(
    dataset: &FailureDataset,
    kind: MachineKind,
    subsystem: Option<SubsystemId>,
) -> Option<RateSummary> {
    let population = dataset.population(kind, subsystem);
    if population == 0 {
        return None;
    }
    let series = rate_series(dataset, kind, subsystem, Granularity::Week);
    let total: usize = dataset
        .events()
        .iter()
        .filter(|ev| {
            let m = dataset.machine(ev.machine());
            m.kind() == kind && subsystem.is_none_or(|s| m.subsystem() == s)
        })
        .count();
    if total == 0 {
        return None;
    }
    summarize_series(&series, population, total)
}

/// Mean time between failures in days for one machine kind, over the whole
/// estate: `population × observation days / total events`.
///
/// Returns `None` when the group has no machines or no failures — callers
/// comparing clean and degraded datasets should treat that as "estimate
/// unavailable", not zero.
pub fn mtbf_days(dataset: &FailureDataset, kind: MachineKind) -> Option<f64> {
    let population = dataset.population(kind, None);
    let events = dataset
        .events()
        .iter()
        .filter(|ev| dataset.machine(ev.machine()).kind() == kind)
        .count();
    if population == 0 || events == 0 {
        return None;
    }
    Some(dataset.horizon().num_days() as f64 * population as f64 / events as f64)
}

/// Computes Fig. 2: weekly failure rates for PMs and VMs, estate-wide and
/// per subsystem.
///
/// # Panics
///
/// Panics if the dataset contains no PM or no VM failures at all (no study
/// to run).
pub fn weekly_failure_rates(dataset: &FailureDataset) -> WeeklyFailureRates {
    let all_pm =
        group_summary(dataset, MachineKind::Pm, None).expect("dataset must contain PM failures");
    let all_vm =
        group_summary(dataset, MachineKind::Vm, None).expect("dataset must contain VM failures");
    let per_subsystem = dataset
        .topology()
        .subsystems()
        .iter()
        .map(|meta| SubsystemRates {
            name: meta.name().to_string(),
            pm: group_summary(dataset, MachineKind::Pm, Some(meta.id())),
            vm: group_summary(dataset, MachineKind::Vm, Some(meta.id())),
        })
        .collect();
    WeeklyFailureRates {
        all_pm,
        all_vm,
        per_subsystem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn fig2_pm_exceeds_vm_and_matches_paper_band() {
        let fig2 = weekly_failure_rates(testutil::dataset());
        // Paper: PMs ≈ 0.005/week, VMs ≈ 0.003/week; PMs ≈ 1.4× VMs.
        assert!(fig2.all_pm.mean > fig2.all_vm.mean);
        assert!(
            fig2.all_pm.mean > 0.003 && fig2.all_pm.mean < 0.008,
            "PM mean {}",
            fig2.all_pm.mean
        );
        assert!(
            fig2.all_vm.mean > 0.0015 && fig2.all_vm.mean < 0.0055,
            "VM mean {}",
            fig2.all_vm.mean
        );
        let ratio = fig2.all_pm.mean / fig2.all_vm.mean;
        assert!(ratio > 1.1 && ratio < 2.6, "PM/VM ratio {ratio}");
        // Quartile band is ordered.
        assert!(fig2.all_pm.p25 <= fig2.all_pm.mean * 1.5);
        assert!(fig2.all_pm.p25 <= fig2.all_pm.p75);
    }

    #[test]
    fn fig2_has_all_five_subsystems_and_sys2_vm_gap() {
        let fig2 = weekly_failure_rates(testutil::dataset());
        assert_eq!(fig2.per_subsystem.len(), 5);
        // Sys II VMs never fail → no bar, like the paper.
        assert!(fig2.per_subsystem[1].vm.is_none());
        assert!(fig2.per_subsystem[1].pm.is_some());
        // Sys IV is the one subsystem where VMs out-fail PMs.
        let s4 = &fig2.per_subsystem[3];
        let (pm, vm) = (s4.pm.unwrap(), s4.vm.unwrap());
        assert!(
            vm.mean > pm.mean,
            "Sys IV: vm {} vs pm {}",
            vm.mean,
            pm.mean
        );
        // Sys I PMs are the hottest PM population.
        let s1_pm = fig2.per_subsystem[0].pm.unwrap().mean;
        for other in &fig2.per_subsystem[1..] {
            if let Some(pm) = other.pm {
                assert!(s1_pm >= pm.mean * 0.9, "Sys I should be near-max");
            }
        }
    }

    #[test]
    fn rate_series_sums_to_total_events() {
        let ds = testutil::dataset();
        for granularity in [Granularity::Day, Granularity::Week, Granularity::Month] {
            let series = rate_series(ds, MachineKind::Pm, None, granularity);
            let pm_count = ds.population(MachineKind::Pm, None);
            let total: f64 = series.iter().sum::<f64>() * pm_count as f64;
            let expected = ds
                .events()
                .iter()
                .filter(|e| ds.machine(e.machine()).is_pm())
                .count();
            assert!((total - expected as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn series_lengths_match_horizon() {
        let ds = testutil::tiny();
        assert_eq!(
            rate_series(ds, MachineKind::Vm, None, Granularity::Week).len(),
            52
        );
        assert_eq!(
            rate_series(ds, MachineKind::Vm, None, Granularity::Day).len(),
            364
        );
        assert_eq!(
            rate_series(ds, MachineKind::Vm, None, Granularity::Month).len(),
            13
        );
    }

    #[test]
    fn empty_group_yields_zero_series() {
        let ds = testutil::tiny();
        // Subsystem id beyond the five → empty population.
        let series = rate_series(
            ds,
            MachineKind::Vm,
            Some(SubsystemId::new(99)),
            Granularity::Week,
        );
        assert!(series.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn summarize_series_empty_is_none() {
        assert!(summarize_series(&[], 10, 0).is_none());
        let s = summarize_series(&[0.0, 0.5, 1.0], 10, 15).unwrap();
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.n_machines, 10);
        assert_eq!(s.total_events, 15);
    }
}
