//! Week-ahead failure prediction.
//!
//! The paper's related work (BlueGene/L, [10]) explores "the correlation
//! between the recurrence and the location of failures through an on-line
//! predictive model"; the paper itself stops at measurement. This module is
//! the natural extension: score every machine's probability of failing next
//! week from its history and attributes, and evaluate the scores against
//! what actually happened — walking forward in time, never peeking ahead.
//!
//! The predictor is deliberately simple and interpretable; its value is in
//! quantifying how much signal the paper's findings carry:
//!
//! * **recency** — failures recur (Table V: 35–42× random),
//! * **frequency** — past failure count marks lemons,
//! * **base rate** — kind × subsystem skews (Fig. 2).

use dcfail_model::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scoring weights for the week-ahead predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorWeights {
    /// Added when the machine failed within the last week.
    pub recency_1w: f64,
    /// Added when the machine failed within the last month (28 days).
    pub recency_4w: f64,
    /// Per prior failure (capped at 5).
    pub per_prior_failure: f64,
    /// Weight of the group base rate (failures per machine-week so far).
    pub base_rate: f64,
}

impl Default for PredictorWeights {
    fn default() -> Self {
        Self {
            recency_1w: 0.20,
            recency_4w: 0.06,
            per_prior_failure: 0.02,
            base_rate: 1.0,
        }
    }
}

/// Evaluation of the predictor over the observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Machine-week observations evaluated.
    pub observations: usize,
    /// Machine-weeks that actually failed.
    pub positives: usize,
    /// Fraction of next-week failures captured by the top-decile scores.
    pub recall_at_top_decile: f64,
    /// Lift of the top decile over a random decile.
    pub lift_at_top_decile: f64,
    /// Area under the ROC curve (probability a failing machine-week
    /// outscores a non-failing one).
    pub auc: f64,
}

/// Scores every machine at the start of `week` using only history before
/// that week, returning `(machine, score)`.
pub fn score_week(
    dataset: &FailureDataset,
    week: usize,
    weights: &PredictorWeights,
) -> Vec<(MachineId, f64)> {
    let horizon = dataset.horizon();
    let week_start = horizon.start() + WEEK * week as i64;
    // History per machine.
    let mut last_failure: BTreeMap<MachineId, SimTime> = BTreeMap::new();
    let mut failure_count: BTreeMap<MachineId, usize> = BTreeMap::new();
    let mut group_events: BTreeMap<(MachineKind, SubsystemId), usize> = BTreeMap::new();
    for ev in dataset.events() {
        if ev.at() >= week_start {
            break; // events are time-sorted; never peek ahead
        }
        last_failure.insert(ev.machine(), ev.at());
        *failure_count.entry(ev.machine()).or_insert(0) += 1;
        let m = dataset.machine(ev.machine());
        *group_events.entry((m.kind(), m.subsystem())).or_insert(0) += 1;
    }
    // Group base rates per machine-week observed so far.
    let weeks_so_far = week.max(1) as f64;
    let mut group_rate: BTreeMap<(MachineKind, SubsystemId), f64> = BTreeMap::new();
    for (&key, &events) in &group_events {
        let population = dataset.population(key.0, Some(key.1)).max(1);
        group_rate.insert(key, events as f64 / population as f64 / weeks_so_far);
    }

    dataset
        .machines()
        .iter()
        .map(|m| {
            let mut score = 0.0;
            if let Some(&last) = last_failure.get(&m.id()) {
                let days = (week_start - last).as_days();
                if days <= 7.0 {
                    score += weights.recency_1w;
                }
                if days <= 28.0 {
                    score += weights.recency_4w;
                }
            }
            let count = failure_count.get(&m.id()).copied().unwrap_or(0).min(5);
            score += weights.per_prior_failure * count as f64;
            score += weights.base_rate
                * group_rate
                    .get(&(m.kind(), m.subsystem()))
                    .copied()
                    .unwrap_or(0.0);
            (m.id(), score)
        })
        .collect()
}

/// Walk-forward evaluation: for each week from `start_week` on, score all
/// machines on history and compare against that week's actual failures.
///
/// Returns `None` when no machine-week fails in the evaluation span.
pub fn evaluate(
    dataset: &FailureDataset,
    start_week: usize,
    weights: &PredictorWeights,
) -> Option<PredictionReport> {
    let weeks = dataset.horizon().num_weeks();
    // Actual failures per (machine, week).
    let mut failed: BTreeMap<(usize, MachineId), bool> = BTreeMap::new();
    for ev in dataset.events() {
        if let Some(w) = dataset.horizon().week_of(ev.at()) {
            failed.insert((w, ev.machine()), true);
        }
    }

    let mut scored: Vec<(f64, bool)> = Vec::new();
    for week in start_week..weeks {
        for (machine, score) in score_week(dataset, week, weights) {
            let positive = failed.contains_key(&(week, machine));
            scored.push((score, positive));
        }
    }
    let positives = scored.iter().filter(|&&(_, p)| p).count();
    if positives == 0 {
        return None;
    }

    // Top decile by score; machine-week order is the explicit tie-break, so
    // the cutoff is a total order independent of sort stability.
    let mut by_score: Vec<(usize, (f64, bool))> = scored.iter().copied().enumerate().collect();
    by_score.sort_unstable_by(|(i, a), (j, b)| b.0.total_cmp(&a.0).then(i.cmp(j)));
    let decile = (by_score.len() / 10).max(1);
    let hits = by_score[..decile].iter().filter(|&&(_, (_, p))| p).count();
    let recall = hits as f64 / positives as f64;
    let random_recall = decile as f64 / by_score.len() as f64;

    // AUC via rank statistic (ties get mid-ranks).
    let scores: Vec<f64> = scored.iter().map(|&(s, _)| s).collect();
    let ranks = dcfail_stats::corr::ranks(&scores);
    let pos_rank_sum: f64 = scored
        .iter()
        .zip(&ranks)
        .filter(|((_, p), _)| *p)
        .map(|(_, &r)| r)
        .sum();
    let n_pos = positives as f64;
    let n_neg = (scored.len() - positives) as f64;
    let auc = (pos_rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg);

    Some(PredictionReport {
        observations: scored.len(),
        positives,
        recall_at_top_decile: recall,
        lift_at_top_decile: recall / random_recall,
        auc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn predictor_beats_random() {
        let ds = testutil::dataset();
        let report = evaluate(ds, 8, &PredictorWeights::default()).expect("failures exist");
        // Recurrence alone guarantees real lift: a failing machine is
        // ~40-60x more likely to fail next week.
        assert!(report.auc > 0.6, "AUC {}", report.auc);
        assert!(
            report.lift_at_top_decile > 2.0,
            "lift {}",
            report.lift_at_top_decile
        );
        assert!(report.positives > 100);
        assert!(report.observations > 100_000);
        assert!((0.0..=1.0).contains(&report.recall_at_top_decile));
    }

    #[test]
    fn scores_never_peek_ahead() {
        let ds = testutil::dataset();
        // Week-0 scores use no event history: only zero base rates.
        let w0 = score_week(ds, 0, &PredictorWeights::default());
        assert!(w0.iter().all(|&(_, s)| s == 0.0));
        // Later weeks produce nonzero scores.
        let w20 = score_week(ds, 20, &PredictorWeights::default());
        assert!(w20.iter().any(|&(_, s)| s > 0.0));
        assert_eq!(w20.len(), ds.machines().len());
    }

    #[test]
    fn recent_failures_raise_scores() {
        let ds = testutil::dataset();
        let weights = PredictorWeights::default();
        // Find a machine that failed in week 19.
        let failed_machine = ds
            .events()
            .iter()
            .find(|ev| ds.horizon().week_of(ev.at()) == Some(19))
            .map(FailureEvent::machine)
            .expect("some failure in week 19");
        let scores: BTreeMap<MachineId, f64> = score_week(ds, 20, &weights).into_iter().collect();
        let failed_score = scores[&failed_machine];
        // It must outscore a never-failed machine of the same group.
        let m = ds.machine(failed_machine);
        let virgin = ds
            .machines()
            .iter()
            .find(|x| {
                x.kind() == m.kind()
                    && x.subsystem() == m.subsystem()
                    && ds.events_for(x.id()).next().is_none()
            })
            .expect("some never-failed peer");
        assert!(failed_score > scores[&virgin.id()]);
    }

    #[test]
    fn zero_weights_give_chance_auc() {
        let ds = testutil::dataset();
        let weights = PredictorWeights {
            recency_1w: 0.0,
            recency_4w: 0.0,
            per_prior_failure: 0.0,
            base_rate: 0.0,
        };
        let report = evaluate(ds, 8, &weights).unwrap();
        // All scores equal ⇒ AUC = 0.5 by mid-rank convention.
        assert!((report.auc - 0.5).abs() < 1e-9, "AUC {}", report.auc);
    }
}
