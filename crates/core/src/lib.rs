//! # dcfail-core
//!
//! The failure-trace analysis toolkit — the paper's methodology as a
//! reusable library. Every analysis consumes a
//! [`dcfail_model::dataset::FailureDataset`] (simulated, hand-built or
//! deserialized) and returns plain result structs that the report layer
//! renders and tests assert on.
//!
//! Module ↔ paper-artifact map:
//!
//! | Module | Artifacts |
//! |---|---|
//! | [`rates`] | Fig. 2 (weekly failure rates) |
//! | [`class_mix`] | Fig. 1 (ticket share per failure class) |
//! | [`interfailure`] | Fig. 3, Table III (inter-failure times + fits) |
//! | [`repair`] | Fig. 4, Table IV (repair times + fits) |
//! | [`recurrence`] | Fig. 5, Table V (recurrent vs random failures) |
//! | [`spatial`] | Tables VI, VII (incident footprints) |
//! | [`age`] | Fig. 6 (VM age vs failures) |
//! | [`capacity`] | Fig. 7 (rate vs CPU/memory/disk capacity) |
//! | [`usage`] | Fig. 8 (rate vs CPU/memory/disk/network usage) |
//! | [`consolidation`] | Fig. 9 (rate vs consolidation level) |
//! | [`onoff`] | Fig. 10 (rate vs on/off frequency) |
//!
//! Beyond the paper's artifacts, [`availability`] turns the failure record
//! into availability/"nines" (the paper's motivating metric) and
//! [`prediction`] evaluates a week-ahead failure predictor built on the
//! paper's findings (the related-work direction the paper stops short of);
//! [`whatif`] makes the paper's §VII operational advice executable as
//! curve-based counterfactuals.
//!
//! ```
//! use dcfail_synth::Scenario;
//! use dcfail_core::rates;
//!
//! let dataset = Scenario::paper().seed(1).scale(0.05).build().into_dataset();
//! let fig2 = rates::weekly_failure_rates(&dataset);
//! assert!(fig2.all_pm.mean > fig2.all_vm.mean, "PMs fail more than VMs");
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod age;
pub mod availability;
pub mod capacity;
pub mod class_mix;
pub mod consolidation;
pub mod curve;
pub mod degradation;
pub mod followon;
pub mod interfailure;
pub mod onoff;
pub mod prediction;
pub mod rates;
pub mod recurrence;
pub mod repair;
pub mod spatial;
pub mod temporal;
pub mod usage;
pub mod whatif;

use dcfail_model::failure::{FailureClass, FailureEvent};
use serde::{Deserialize, Serialize};

/// Which class label an analysis reads from failure events.
///
/// The paper only ever sees pipeline output ([`ClassSource::Reported`]);
/// the simulator also carries ground truth, which the ablation benches use
/// to quantify labeling noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClassSource {
    /// Labels produced by the ticket-classification pipeline (paper setup).
    #[default]
    Reported,
    /// Simulator ground truth.
    Truth,
}

impl ClassSource {
    /// Reads the chosen label from an event.
    pub fn class_of(self, event: &FailureEvent) -> FailureClass {
        match self {
            ClassSource::Reported => event.reported_class(),
            ClassSource::Truth => event.true_class(),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use dcfail_model::dataset::FailureDataset;
    use dcfail_synth::Scenario;
    use std::sync::OnceLock;

    /// A shared mid-size dataset so the analysis tests don't each pay for a
    /// simulation run.
    pub fn dataset() -> &'static FailureDataset {
        static DS: OnceLock<FailureDataset> = OnceLock::new();
        DS.get_or_init(|| {
            Scenario::paper()
                .seed(1234)
                .scale(1.0)
                .build()
                .into_dataset()
        })
    }

    /// A tiny dataset for cheap smoke tests.
    pub fn tiny() -> &'static FailureDataset {
        static DS: OnceLock<FailureDataset> = OnceLock::new();
        DS.get_or_init(|| Scenario::paper().seed(7).scale(0.02).build().into_dataset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcfail_model::prelude::*;
    use dcfail_model::time::HOUR;

    #[test]
    fn class_source_reads_the_right_label() {
        let ev = FailureEvent::new(
            MachineId::new(0),
            IncidentId::new(0),
            TicketId::new(0),
            SimTime::ZERO,
            FailureClass::Software,
            FailureClass::Other,
            HOUR,
        );
        assert_eq!(ClassSource::Truth.class_of(&ev), FailureClass::Software);
        assert_eq!(ClassSource::Reported.class_of(&ev), FailureClass::Other);
        assert_eq!(ClassSource::default(), ClassSource::Reported);
    }
}
