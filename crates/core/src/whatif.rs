//! Counterfactual policy evaluation from measured curves.
//!
//! The paper ends with operational advice: consolidate VMs onto well-filled
//! platforms (Fig. 9), keep power-cycling moderate (Fig. 10), prefer fewer
//! virtual disks (Fig. 7d). This module makes that advice executable: it
//! learns the measured rate-vs-attribute curves from a dataset and predicts
//! the fleet-wide VM failure rate under an intervention that moves machines
//! across buckets.
//!
//! The prediction is a *reweighting* counterfactual: it assumes the measured
//! per-bucket rates are causal and stable — exactly the reading the paper's
//! recommendations imply. That assumption is documented, not hidden; the
//! [`WhatIf::baseline_vm_rate`] vs actual-rate calibration check quantifies
//! how well the bucket model explains the fleet in the first place.

use crate::consolidation::rate_by_consolidation;
use crate::curve::AttributeCurve;
use crate::onoff::rate_by_onoff;
use dcfail_model::prelude::*;
use serde::{Deserialize, Serialize};

/// A policy intervention on the VM fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Intervention {
    /// Re-home every VM on a platform below `min_level` average
    /// consolidation onto platforms at `min_level` (Fig. 9 advice).
    RaiseConsolidation {
        /// Target minimum consolidation level.
        min_level: f64,
    },
    /// Throttle power cycling so no VM exceeds `max_per_month` on/off
    /// transitions (Fig. 10 advice).
    LimitPowerCycling {
        /// Maximum monthly on/off transitions after the intervention.
        max_per_month: f64,
    },
    /// Consolidate virtual disks so no VM has more than `max_disks`
    /// volumes (Fig. 7d advice).
    ConsolidateDisks {
        /// Maximum number of virtual disks after the intervention.
        max_disks: u32,
    },
}

/// Outcome of evaluating an intervention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WhatIfOutcome {
    /// Predicted fleet VM weekly rate before the intervention.
    pub baseline: f64,
    /// Predicted rate after the intervention.
    pub counterfactual: f64,
    /// VMs whose bucket changed.
    pub vms_moved: usize,
}

impl WhatIfOutcome {
    /// Relative rate change, negative = improvement.
    pub fn relative_change(&self) -> f64 {
        if self.baseline == 0.0 {
            0.0
        } else {
            self.counterfactual / self.baseline - 1.0
        }
    }
}

/// A curve-based counterfactual model of the VM fleet.
#[derive(Debug, Clone)]
pub struct WhatIf<'a> {
    dataset: &'a FailureDataset,
    consolidation: AttributeCurve,
    onoff: AttributeCurve,
    disks: AttributeCurve,
}

impl<'a> WhatIf<'a> {
    /// Measures the relevant curves from a dataset.
    pub fn from_dataset(dataset: &'a FailureDataset) -> Self {
        Self {
            consolidation: rate_by_consolidation(dataset),
            onoff: rate_by_onoff(dataset),
            disks: crate::capacity::rate_by_disk_count(dataset),
            dataset,
        }
    }

    fn consolidation_bucket(level: f64) -> &'static str {
        match level {
            l if l < 1.5 => "1",
            l if l < 3.0 => "2",
            l if l < 6.0 => "4",
            l if l < 12.0 => "8",
            l if l < 24.0 => "16",
            _ => "32",
        }
    }

    fn onoff_bucket(rate: f64) -> &'static str {
        match rate {
            r if r < 1.0 => "0-1",
            r if r < 2.0 => "1-2",
            r if r < 4.0 => "2-4",
            r if r < 8.0 => "4-8",
            _ => "8+",
        }
    }

    fn disk_bucket(disks: u32) -> String {
        disks.clamp(1, 6).to_string()
    }

    /// The VM attribute relevant to `intervention`, before and after.
    fn buckets_for(
        &self,
        machine: &Machine,
        intervention: Intervention,
    ) -> Option<(String, String)> {
        let telemetry = self.dataset.telemetry();
        match intervention {
            Intervention::RaiseConsolidation { min_level } => {
                let level = telemetry.mean_consolidation(machine.id())?;
                let after = level.max(min_level);
                Some((
                    Self::consolidation_bucket(level).to_string(),
                    Self::consolidation_bucket(after).to_string(),
                ))
            }
            Intervention::LimitPowerCycling { max_per_month } => {
                let rate = telemetry.onoff(machine.id())?.monthly_transition_rate()?;
                let after = rate.min(max_per_month);
                Some((
                    Self::onoff_bucket(rate).to_string(),
                    Self::onoff_bucket(after).to_string(),
                ))
            }
            Intervention::ConsolidateDisks { max_disks } => {
                let disks = machine.capacity().disks();
                let after = disks.min(max_disks.max(1));
                Some((Self::disk_bucket(disks), Self::disk_bucket(after)))
            }
        }
    }

    fn curve_for(&self, intervention: Intervention) -> &AttributeCurve {
        match intervention {
            Intervention::RaiseConsolidation { .. } => &self.consolidation,
            Intervention::LimitPowerCycling { .. } => &self.onoff,
            Intervention::ConsolidateDisks { .. } => &self.disks,
        }
    }

    /// Predicted fleet VM weekly rate with no intervention, under the
    /// consolidation-curve bucket model (a calibration reference: compare
    /// against the actual Fig. 2 VM rate).
    pub fn baseline_vm_rate(&self) -> f64 {
        self.predict(Intervention::RaiseConsolidation { min_level: 0.0 })
            .baseline
    }

    /// Evaluates an intervention.
    pub fn predict(&self, intervention: Intervention) -> WhatIfOutcome {
        let curve = self.curve_for(intervention);
        let mut baseline_sum = 0.0;
        let mut counterfactual_sum = 0.0;
        let mut n = 0usize;
        let mut moved = 0usize;
        for m in self.dataset.machines_of_kind(MachineKind::Vm) {
            let Some((before, after)) = self.buckets_for(m, intervention) else {
                continue;
            };
            let Some(rate_before) = curve.mean_of(&before) else {
                continue;
            };
            // If the target bucket was never observed, fall back to the
            // machine's own bucket (no information → no predicted change).
            let rate_after = curve.mean_of(&after).unwrap_or(rate_before);
            baseline_sum += rate_before;
            counterfactual_sum += rate_after;
            n += 1;
            if before != after {
                moved += 1;
            }
        }
        let n = n.max(1) as f64;
        WhatIfOutcome {
            baseline: baseline_sum / n,
            counterfactual: counterfactual_sum / n,
            vms_moved: moved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn bucket_model_is_calibrated() {
        let ds = testutil::dataset();
        let w = WhatIf::from_dataset(ds);
        let predicted = w.baseline_vm_rate();
        let actual = crate::rates::weekly_failure_rates(ds).all_vm.mean;
        // The bucket model must explain the fleet rate within 15%.
        assert!(
            (predicted - actual).abs() / actual < 0.15,
            "predicted {predicted} vs actual {actual}"
        );
    }

    #[test]
    fn raising_consolidation_reduces_predicted_rate() {
        let ds = testutil::dataset();
        let w = WhatIf::from_dataset(ds);
        let outcome = w.predict(Intervention::RaiseConsolidation { min_level: 16.0 });
        assert!(outcome.vms_moved > 0);
        assert!(
            outcome.relative_change() < -0.10,
            "change {}",
            outcome.relative_change()
        );
        assert!(outcome.counterfactual < outcome.baseline);
    }

    #[test]
    fn consolidating_disks_reduces_predicted_rate() {
        let ds = testutil::dataset();
        let w = WhatIf::from_dataset(ds);
        let outcome = w.predict(Intervention::ConsolidateDisks { max_disks: 2 });
        assert!(outcome.vms_moved > 0);
        assert!(outcome.counterfactual < outcome.baseline);
    }

    #[test]
    fn noop_interventions_change_nothing() {
        let ds = testutil::dataset();
        let w = WhatIf::from_dataset(ds);
        for intervention in [
            Intervention::RaiseConsolidation { min_level: 0.0 },
            Intervention::LimitPowerCycling { max_per_month: 1e9 },
            Intervention::ConsolidateDisks { max_disks: 32 },
        ] {
            let outcome = w.predict(intervention);
            assert_eq!(outcome.vms_moved, 0, "{intervention:?}");
            assert_eq!(outcome.baseline, outcome.counterfactual);
            assert_eq!(outcome.relative_change(), 0.0);
        }
    }

    #[test]
    fn limiting_power_cycling_helps_a_little() {
        let ds = testutil::dataset();
        let w = WhatIf::from_dataset(ds);
        let outcome = w.predict(Intervention::LimitPowerCycling { max_per_month: 1.0 });
        assert!(outcome.vms_moved > 0);
        // Fig. 10's effect is modest but real.
        assert!(
            outcome.counterfactual <= outcome.baseline,
            "{} vs {}",
            outcome.counterfactual,
            outcome.baseline
        );
    }
}
