//! Repair times (Fig. 4, Table IV).
//!
//! Repair time = ticket closing − issuing time, including queueing delay.
//! Fig. 4 compares PM and VM repair-time CDFs and fits Log-normal; Table IV
//! breaks mean/median down per failure class.

use crate::ClassSource;
use dcfail_model::prelude::*;
use dcfail_stats::empirical::{Ecdf, Summary};
use dcfail_stats::fit::{Family, ModelSelection};
use dcfail_stats::gof::{ks_test, KsTest};
use serde::{Deserialize, Serialize};

/// Fig. 4 for one machine kind.
#[derive(Debug, Clone)]
pub struct RepairAnalysis {
    /// Repair durations in hours.
    pub hours: Vec<f64>,
    /// ECDF of the repair hours.
    pub ecdf: Ecdf,
    /// MLE fits (Gamma, Weibull, Log-normal) ranked by log-likelihood.
    pub fits: ModelSelection,
    /// KS test of the winning fit.
    pub best_fit_ks: KsTest,
    /// Mean repair time in hours (paper: 38.5 h PM, 19.6 h VM).
    pub mean_hours: f64,
}

/// Repair durations in hours for one machine kind, machine-major via the
/// dataset's per-machine event index (time order within each machine).
pub fn repair_hours(dataset: &FailureDataset, kind: MachineKind) -> Vec<f64> {
    dataset
        .machines_of_kind(kind)
        .flat_map(|m| dataset.events_for(m.id()))
        .map(|ev| ev.repair().as_hours().max(1e-3))
        .collect()
}

/// Runs the Fig. 4 analysis for one machine kind; `None` with fewer than 10
/// repairs.
pub fn analyze(dataset: &FailureDataset, kind: MachineKind) -> Option<RepairAnalysis> {
    let hours = repair_hours(dataset, kind);
    if hours.len() < 10 {
        return None;
    }
    let fits = ModelSelection::fit(&hours, &Family::PAPER).ok()?;
    let best_fit_ks = ks_test(&hours, fits.best().dist.as_dist()).ok()?;
    let mean_hours = hours.iter().sum::<f64>() / hours.len() as f64;
    Some(RepairAnalysis {
        ecdf: Ecdf::new(&hours),
        fits,
        best_fit_ks,
        mean_hours,
        hours,
    })
}

/// One Table IV column: repair statistics of a class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Mean repair hours.
    pub mean: f64,
    /// Median repair hours.
    pub median: f64,
    /// Coefficient of variation (σ/μ).
    pub cv: f64,
    /// Number of repairs.
    pub n: usize,
}

/// Computes Table IV: mean/median repair hours per failure class, dense by
/// [`FailureClass::index`]; `None` for classes with no repairs.
pub fn table4(dataset: &FailureDataset, source: ClassSource) -> [Option<RepairStats>; 6] {
    let mut per_class: [Vec<f64>; 6] = Default::default();
    for ev in dataset.events() {
        per_class[source.class_of(ev).index()].push(ev.repair().as_hours().max(1e-3));
    }
    let mut out = [None; 6];
    for class in FailureClass::ALL {
        let Some(s) = Summary::of(&per_class[class.index()]) else {
            continue;
        };
        out[class.index()] = Some(RepairStats {
            mean: s.mean,
            median: s.median,
            cv: s.cv().unwrap_or(0.0),
            n: s.n,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn pm_repairs_are_roughly_twice_vm_repairs() {
        let ds = testutil::dataset();
        let pm = analyze(ds, MachineKind::Pm).unwrap();
        let vm = analyze(ds, MachineKind::Vm).unwrap();
        // Paper: 38.5 h vs 19.6 h, almost a factor of two.
        let ratio = pm.mean_hours / vm.mean_hours;
        assert!(ratio > 1.3 && ratio < 3.5, "PM/VM repair ratio {ratio}");
        assert!(
            pm.mean_hours > 15.0 && pm.mean_hours < 90.0,
            "PM mean {}",
            pm.mean_hours
        );
        // VM CDF sits above the PM CDF (VMs repaired faster) at common
        // probe points.
        for probe in [2.0, 8.0, 24.0, 72.0] {
            assert!(
                vm.ecdf.eval(probe) >= pm.ecdf.eval(probe) - 0.02,
                "CDFs crossed badly at {probe}h"
            );
        }
    }

    #[test]
    fn lognormal_wins_or_ties_model_selection() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let a = analyze(ds, kind).unwrap();
            let best = a.fits.best();
            let ln = a.fits.for_family(Family::LogNormal).expect("LN fitted");
            let gamma = a.fits.for_family(Family::Gamma).expect("gamma fitted");
            // Log-normal beats Gamma outright (the paper's winner), and is
            // within 0.05 nats/observation of the overall best — the
            // per-class repair mixture can let Weibull tie it.
            assert!(
                ln.log_likelihood > gamma.log_likelihood,
                "{kind}: LN {} vs gamma {}",
                ln.log_likelihood,
                gamma.log_likelihood
            );
            let gap = (best.log_likelihood - ln.log_likelihood).abs();
            assert!(
                gap <= 0.05 * a.fits.n as f64,
                "{kind}: LN trails best by {gap} over {} repairs",
                a.fits.n
            );
        }
    }

    #[test]
    fn table4_matches_paper_ordering() {
        let ds = testutil::dataset();
        let t4 = table4(ds, ClassSource::Truth);
        let get = |c: FailureClass| t4[c.index()].expect("class populated");
        let hw = get(FailureClass::Hardware);
        let net = get(FailureClass::Network);
        let power = get(FailureClass::Power);
        let reboot = get(FailureClass::Reboot);
        let sw = get(FailureClass::Software);
        // Means: HW and Net slowest, power fastest-ish; medians: power < reboot.
        assert!(hw.mean > sw.mean && hw.mean > reboot.mean && hw.mean > power.mean);
        assert!(net.mean > reboot.mean);
        assert!(power.median < reboot.median);
        assert!(power.median < 2.0, "power median {}", power.median);
        // Paper: software has the lowest CV (mean ≈ median).
        for other in [hw, net, power, reboot] {
            assert!(sw.cv < other.cv, "sw cv {} vs {}", sw.cv, other.cv);
        }
        // Mean ≫ median everywhere (high variability).
        for s in [hw, net, power, reboot] {
            assert!(s.mean > s.median);
        }
    }

    #[test]
    fn repair_hours_are_positive() {
        let ds = testutil::tiny();
        for kind in MachineKind::ALL {
            assert!(repair_hours(ds, kind).iter().all(|&h| h > 0.0));
        }
    }

    #[test]
    fn table4_reported_includes_other() {
        let ds = testutil::dataset();
        let t4 = table4(ds, ClassSource::Reported);
        assert!(t4[FailureClass::Other.index()].is_some());
        let total: usize = t4.iter().flatten().map(|s| s.n).sum();
        assert_eq!(total, ds.events().len());
    }
}
