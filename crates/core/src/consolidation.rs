//! Failure rate vs VM consolidation level (Fig. 9).
//!
//! The consolidation level of a VM is the number of VMs sharing its hosting
//! platform; since it drifts with power-cycling and migration, the paper
//! (and we) use the average monthly level over the year.

use crate::curve::{rate_and_share_by_machine, AttributeCurve};
use dcfail_model::prelude::*;
use dcfail_stats::binning::Bins;

/// Bins for consolidation levels 1, 2, 4, ..., 32 with geometric-midpoint
/// edges: a VM whose co-residents are occasionally off still lands in its
/// box's nominal level (e.g. a yearly mean of 29.7 on a 32-VM box maps to
/// the "32" bin, not "16").
pub fn level_bins() -> Bins {
    // Open-ended top bin: a mean level above the old 100.0 cap is a "32"
    // machine, not a silently dropped one.
    Bins::open_last(vec![1.0, 1.5, 3.0, 6.0, 12.0, 24.0]).with_labels(vec![
        "1".into(),
        "2".into(),
        "4".into(),
        "8".into(),
        "16".into(),
        "32".into(),
    ])
}

/// Both Fig. 9 panels — the rate curve and the VM population shares — from
/// one pass: each VM's mean consolidation level is computed and binned
/// exactly once.
pub fn fig9_parts(dataset: &FailureDataset) -> (AttributeCurve, Vec<(String, f64)>) {
    let bins = level_bins();
    rate_and_share_by_machine(dataset, "consolidation", &bins, MachineKind::Vm, |m| {
        dataset.telemetry().mean_consolidation(m.id())
    })
}

/// Fig. 9: weekly VM failure rate vs average consolidation level.
pub fn rate_by_consolidation(dataset: &FailureDataset) -> AttributeCurve {
    fig9_parts(dataset).0
}

/// Distribution of VMs across consolidation-level bins: `(label, share)`.
pub fn vm_share_by_level(dataset: &FailureDataset) -> Vec<(String, f64)> {
    fig9_parts(dataset).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn rate_decreases_with_consolidation() {
        let curve = rate_by_consolidation(testutil::dataset());
        let lone = curve.mean_of("1").or(curve.mean_of("2")).unwrap();
        let packed = curve.mean_of("32").or(curve.mean_of("16")).unwrap();
        assert!(
            lone > 1.5 * packed,
            "level-1 rate {lone} vs level-32 rate {packed}"
        );
        // Monotone-ish decrease across the curve (allow small noise).
        let means: Vec<f64> = curve.points.iter().map(|p| p.mean).collect();
        assert!(means.first().unwrap() > means.last().unwrap());
    }

    #[test]
    fn vm_population_skews_toward_high_consolidation() {
        let shares = vm_share_by_level(testutil::dataset());
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let lone = shares
            .iter()
            .find(|(l, _)| l == "1")
            .map_or(0.0, |&(_, s)| s);
        let high: f64 = shares
            .iter()
            .filter(|(l, _)| l == "16" || l == "32")
            .map(|&(_, s)| s)
            .sum();
        // Paper: 0.6% at level 1, ~62% at levels 16+.
        assert!(lone < 0.15, "lone share {lone}");
        assert!(high > 0.35, "high share {high}");
    }

    #[test]
    fn curve_points_are_ordered_by_level() {
        let curve = rate_by_consolidation(testutil::dataset());
        let labels: Vec<&str> = curve.points.iter().map(|p| p.label.as_str()).collect();
        let expected = ["1", "2", "4", "8", "16", "32"];
        let mut last_pos = 0;
        for l in &labels {
            let pos = expected.iter().position(|e| e == l).expect("known label");
            assert!(pos >= last_pos);
            last_pos = pos;
        }
    }
}
