//! Shared machinery for the rate-vs-attribute figures (Figs. 7–10).
//!
//! All four figures have the same skeleton: bucket machines by an attribute
//! (capacity, weekly usage, consolidation level, on/off frequency), compute
//! the weekly failure rate of each bucket, and report mean + 25th/75th
//! percentiles per bucket. [`weekly_rate_by`] implements that skeleton for
//! any attribute function; attributes may vary per week (usage) or be static
//! (capacity).

use dcfail_model::prelude::*;
use dcfail_stats::empirical::Summary;
use serde::{Deserialize, Serialize};

/// One bucket of a rate-vs-attribute curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Bucket label (e.g. `"4"` CPUs or `"10-20"` percent).
    pub label: String,
    /// Mean weekly failure rate of the bucket.
    pub mean: f64,
    /// 25th percentile of the bucket's weekly rate series.
    pub p25: f64,
    /// 75th percentile of the bucket's weekly rate series.
    pub p75: f64,
    /// Machine-weeks observed in the bucket.
    pub machine_weeks: usize,
    /// Failure events observed in the bucket.
    pub events: usize,
}

/// A full rate-vs-attribute curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeCurve {
    /// What the attribute is (for rendering).
    pub attribute: String,
    /// Buckets in attribute order; empty buckets are omitted.
    pub points: Vec<CurvePoint>,
}

impl AttributeCurve {
    /// Mean rate of the bucket with `label`, if present.
    pub fn mean_of(&self, label: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.mean)
    }

    /// [`AttributeCurve::dynamic_range`] restricted to buckets holding at
    /// least `min_share` of the curve's machine-weeks — sparse outlier
    /// buckets otherwise dominate the ratio.
    pub fn dynamic_range_min_weight(&self, min_share: f64) -> Option<f64> {
        let total: usize = self.points.iter().map(|p| p.machine_weeks).sum();
        let floor = (total as f64 * min_share) as usize;
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for p in &self.points {
            if p.machine_weeks < floor.max(1) {
                continue;
            }
            lo = lo.min(p.mean);
            hi = hi.max(p.mean);
        }
        (lo.is_finite() && lo > 0.0 && hi > 0.0).then(|| hi / lo)
    }

    /// Ratio between the highest and lowest bucket means (the paper's
    /// "impact factor", e.g. 5.5× for PM CPU counts).
    pub fn dynamic_range(&self) -> Option<f64> {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for p in &self.points {
            if p.machine_weeks == 0 {
                continue;
            }
            lo = lo.min(p.mean);
            hi = hi.max(p.mean);
        }
        (lo.is_finite() && lo > 0.0 && hi > 0.0).then(|| hi / lo)
    }
}

/// Computes a weekly-rate curve over attribute `attr`.
///
/// `attr(machine, week)` returns the machine's bucket attribute for that
/// week, or `None` to exclude the machine-week (e.g. missing telemetry).
/// For each bucket, the weekly rate series is
/// `events(bucket, week) / machines(bucket, week)` over all weeks where the
/// bucket is populated.
pub fn weekly_rate_by(
    dataset: &FailureDataset,
    attribute: &str,
    bins: &dcfail_stats::binning::Bins,
    kind: MachineKind,
    mut attr: impl FnMut(&Machine, usize) -> Option<f64>,
) -> AttributeCurve {
    let weeks = dataset.horizon().num_weeks();
    let nbins = bins.len();
    // Per (bin, week): population and event counts.
    let mut population = vec![vec![0usize; weeks]; nbins];
    let mut events = vec![vec![0usize; weeks]; nbins];

    // Assign machine-weeks to bins.
    let mut bin_of_machine_week: Vec<Vec<Option<usize>>> = Vec::new();
    for m in dataset.machines() {
        let mut per_week = vec![None; weeks];
        if m.kind() == kind {
            for (w, slot) in per_week.iter_mut().enumerate() {
                if let Some(value) = attr(m, w) {
                    if let Some(bin) = bins.index_of(value) {
                        population[bin][w] += 1;
                        *slot = Some(bin);
                    }
                }
            }
        }
        bin_of_machine_week.push(per_week);
    }

    // Count events per (bin, week).
    for ev in dataset.events() {
        let Some(w) = dataset.horizon().week_of(ev.at()) else {
            continue;
        };
        if let Some(bin) = bin_of_machine_week[ev.machine().index()][w] {
            events[bin][w] += 1;
        }
    }

    // Summarize per bin.
    let mut points = Vec::new();
    for bin in 0..nbins {
        let mut series = Vec::new();
        let mut machine_weeks = 0usize;
        let mut event_total = 0usize;
        for w in 0..weeks {
            let pop = population[bin][w];
            if pop == 0 {
                continue;
            }
            machine_weeks += pop;
            event_total += events[bin][w];
            series.push(events[bin][w] as f64 / pop as f64);
        }
        let Some(s) = Summary::of(&series) else {
            continue;
        };
        points.push(CurvePoint {
            label: bins.label(bin).to_string(),
            mean: s.mean,
            p25: s.p25,
            p75: s.p75,
            machine_weeks,
            events: event_total,
        });
    }
    AttributeCurve {
        attribute: attribute.to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dcfail_stats::binning::Bins;

    #[test]
    fn curve_rate_normalizes_by_population() {
        let ds = testutil::dataset();
        // Single catch-all bin → curve mean equals the overall weekly rate.
        let bins = Bins::from_edges(vec![0.0, 1e9]);
        let curve = weekly_rate_by(ds, "all", &bins, MachineKind::Pm, |_, _| Some(1.0));
        assert_eq!(curve.points.len(), 1);
        let fig2 = crate::rates::weekly_failure_rates(ds);
        assert!(
            (curve.points[0].mean - fig2.all_pm.mean).abs() < 1e-9,
            "curve {} vs fig2 {}",
            curve.points[0].mean,
            fig2.all_pm.mean
        );
    }

    #[test]
    fn events_and_machine_weeks_are_consistent() {
        let ds = testutil::dataset();
        let bins = Bins::discrete(&[1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 64.0]);
        let curve = weekly_rate_by(ds, "cpus", &bins, MachineKind::Pm, |m, _| {
            Some(m.capacity().cpus() as f64)
        });
        let total_events: usize = curve.points.iter().map(|p| p.events).sum();
        let expected = ds
            .events()
            .iter()
            .filter(|e| ds.machine(e.machine()).is_pm())
            .count();
        assert_eq!(total_events, expected);
        let total_mw: usize = curve.points.iter().map(|p| p.machine_weeks).sum();
        assert_eq!(total_mw, ds.population(MachineKind::Pm, None) * 52);
    }

    #[test]
    fn excluded_machine_weeks_drop_out() {
        let ds = testutil::tiny();
        let bins = Bins::from_edges(vec![0.0, 2.0]);
        let curve = weekly_rate_by(ds, "none", &bins, MachineKind::Vm, |_, _| None);
        assert!(curve.points.is_empty());
        assert!(curve.dynamic_range().is_none());
    }

    #[test]
    fn mean_of_and_dynamic_range() {
        let curve = AttributeCurve {
            attribute: "x".into(),
            points: vec![
                CurvePoint {
                    label: "a".into(),
                    mean: 0.002,
                    p25: 0.0,
                    p75: 0.004,
                    machine_weeks: 10,
                    events: 1,
                },
                CurvePoint {
                    label: "b".into(),
                    mean: 0.01,
                    p25: 0.005,
                    p75: 0.015,
                    machine_weeks: 10,
                    events: 5,
                },
            ],
        };
        assert_eq!(curve.mean_of("b"), Some(0.01));
        assert_eq!(curve.mean_of("zz"), None);
        assert!((curve.dynamic_range().unwrap() - 5.0).abs() < 1e-12);
        // Weighted range drops sparse buckets.
        assert!((curve.dynamic_range_min_weight(0.1).unwrap() - 5.0).abs() < 1e-12);
        let mut sparse = curve.clone();
        sparse.points.push(CurvePoint {
            label: "c".into(),
            mean: 1.0,
            p25: 0.0,
            p75: 1.0,
            machine_weeks: 1,
            events: 1,
        });
        assert!(sparse.dynamic_range().unwrap() > 100.0);
        assert!((sparse.dynamic_range_min_weight(0.2).unwrap() - 5.0).abs() < 1e-12);
    }
}
