//! Shared machinery for the rate-vs-attribute figures (Figs. 7–10).
//!
//! All four figures have the same skeleton: bucket machines by an attribute
//! (capacity, weekly usage, consolidation level, on/off frequency), compute
//! the weekly failure rate of each bucket, and report mean + 25th/75th
//! percentiles per bucket. [`weekly_rate_by`] implements that skeleton for
//! any attribute function; attributes may vary per week (usage) or be static
//! (capacity).

use dcfail_model::prelude::*;
use dcfail_stats::binning::Bins;
use dcfail_stats::empirical::Summary;
use dcfail_stats::merge::{CountMatrix, Mergeable};
use serde::{Deserialize, Serialize};

/// One bucket of a rate-vs-attribute curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Bucket label (e.g. `"4"` CPUs or `"10-20"` percent).
    pub label: String,
    /// Mean weekly failure rate of the bucket.
    pub mean: f64,
    /// 25th percentile of the bucket's weekly rate series.
    pub p25: f64,
    /// 75th percentile of the bucket's weekly rate series.
    pub p75: f64,
    /// Machine-weeks observed in the bucket.
    pub machine_weeks: usize,
    /// Failure events observed in the bucket.
    pub events: usize,
}

/// A full rate-vs-attribute curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeCurve {
    /// What the attribute is (for rendering).
    pub attribute: String,
    /// Buckets in attribute order; empty buckets are omitted.
    pub points: Vec<CurvePoint>,
}

impl AttributeCurve {
    /// Mean rate of the bucket with `label`, if present.
    pub fn mean_of(&self, label: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.mean)
    }

    /// [`AttributeCurve::dynamic_range`] restricted to buckets holding at
    /// least `min_share` of the curve's machine-weeks — sparse outlier
    /// buckets otherwise dominate the ratio.
    pub fn dynamic_range_min_weight(&self, min_share: f64) -> Option<f64> {
        let total: usize = self.points.iter().map(|p| p.machine_weeks).sum();
        let floor = (total as f64 * min_share) as usize;
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for p in &self.points {
            if p.machine_weeks < floor.max(1) {
                continue;
            }
            lo = lo.min(p.mean);
            hi = hi.max(p.mean);
        }
        (lo.is_finite() && lo > 0.0 && hi > 0.0).then(|| hi / lo)
    }

    /// Ratio between the highest and lowest bucket means (the paper's
    /// "impact factor", e.g. 5.5× for PM CPU counts).
    pub fn dynamic_range(&self) -> Option<f64> {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for p in &self.points {
            if p.machine_weeks == 0 {
                continue;
            }
            lo = lo.min(p.mean);
            hi = hi.max(p.mean);
        }
        (lo.is_finite() && lo > 0.0 && hi > 0.0).then(|| hi / lo)
    }
}

/// Sentinel bin id for "machine-week not binned" in the flat columnar bin
/// grids ([`CurveCounts::observe_machine_weeks_into`]). Bin counts are tiny
/// (≤ 13 across all figures), so bin ids fit a `u16` with room to spare.
pub const NO_BIN: u16 = u16::MAX;

/// Mergeable per-(bin, week) population and event counts behind a
/// rate-vs-attribute curve.
///
/// A whole-fleet pass ([`weekly_rate_by`]) and a sharded pass (each shard
/// counting its own machine-weeks and events, then absorbing) build the
/// same counts, so [`Mergeable::finalize`] yields bit-identical
/// [`AttributeCurve`]s either way — counting is exactly mergeable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveCounts {
    attribute: String,
    labels: Vec<String>,
    weeks: usize,
    population: CountMatrix,
    events: CountMatrix,
}

impl CurveCounts {
    /// Empty counts for a curve over `bins` and `weeks` observation weeks.
    pub fn new(attribute: &str, bins: &Bins, weeks: usize) -> Self {
        assert!(
            bins.len() < NO_BIN as usize,
            "bin count must leave room for the NO_BIN sentinel"
        );
        Self {
            attribute: attribute.to_string(),
            labels: (0..bins.len()).map(|b| bins.label(b).to_string()).collect(),
            weeks,
            population: CountMatrix::zeros(bins.len(), weeks),
            events: CountMatrix::zeros(bins.len(), weeks),
        }
    }

    /// Buckets one machine's weeks under `attr(week)`, counting each binned
    /// machine-week, and returns the per-week bin assignment — needed later
    /// to attribute the machine's failure events to bins via [`Self::add_event`].
    pub fn observe_machine_weeks(
        &mut self,
        bins: &Bins,
        attr: impl FnMut(usize) -> Option<f64>,
    ) -> Vec<Option<usize>> {
        let mut row = vec![NO_BIN; self.weeks];
        self.observe_machine_weeks_into(bins, attr, &mut row);
        row.iter()
            .map(|&b| (b != NO_BIN).then_some(b as usize))
            .collect()
    }

    /// [`Self::observe_machine_weeks`] in flat columnar form: writes the
    /// per-week bin assignment into a preallocated `row` of `u16` bin ids
    /// ([`NO_BIN`] for unbinned weeks) instead of allocating a
    /// `Vec<Option<usize>>` per machine.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly one slot per observation week.
    pub fn observe_machine_weeks_into(
        &mut self,
        bins: &Bins,
        mut attr: impl FnMut(usize) -> Option<f64>,
        row: &mut [u16],
    ) {
        assert_eq!(row.len(), self.weeks, "row must be one slot per week");
        for (w, slot) in row.iter_mut().enumerate() {
            *slot = NO_BIN;
            if let Some(value) = attr(w) {
                if let Some(bin) = bins.index_of(value) {
                    self.population.add(bin, w, 1);
                    *slot = bin as u16;
                }
            }
        }
    }

    /// Buckets a machine whose attribute is week-invariant: the attribute is
    /// evaluated once, every observation week lands in its bin (the exact
    /// counts `observe_machine_weeks` would produce for a constant
    /// attribute), and the single bin id is returned for event attribution.
    pub fn observe_machine_constant(&mut self, bins: &Bins, value: Option<f64>) -> Option<usize> {
        let bin = value.and_then(|v| bins.index_of(v))?;
        self.population.add_row(bin, 1);
        Some(bin)
    }

    /// Counts one failure event in `(bin, week)`.
    pub fn add_event(&mut self, bin: usize, week: usize) {
        self.events.add(bin, week, 1);
    }

    /// Flushes one closed streaming window into the counts: `machines`
    /// machine-weeks and `events` failure events land in `(bin, week)` at
    /// once. A window accumulator that buckets its own members and then
    /// flushes each bin through this method produces exactly the counts the
    /// batch observe/add_event path would — counting is commutative, so the
    /// column-at-a-time order cannot be told apart from the batch order.
    pub fn add_window_column(&mut self, bin: usize, week: usize, machines: u64, events: u64) {
        if machines > 0 {
            self.population.add(bin, week, machines);
        }
        if events > 0 {
            self.events.add(bin, week, events);
        }
    }

    /// Number of observation weeks the counts cover.
    pub fn weeks(&self) -> usize {
        self.weeks
    }

    fn is_unset(&self) -> bool {
        self.labels.is_empty() && self.weeks == 0
    }
}

impl Mergeable for CurveCounts {
    type Output = AttributeCurve;

    fn identity() -> Self {
        Self {
            attribute: String::new(),
            labels: Vec::new(),
            weeks: 0,
            population: CountMatrix::identity(),
            events: CountMatrix::identity(),
        }
    }

    fn absorb(&mut self, other: &Self) {
        if other.is_unset() {
            return;
        }
        if self.is_unset() {
            self.attribute.clone_from(&other.attribute);
            self.labels.clone_from(&other.labels);
            self.weeks = other.weeks;
        } else {
            assert!(
                self.attribute == other.attribute
                    && self.labels == other.labels
                    && self.weeks == other.weeks,
                "curve configurations must match"
            );
        }
        self.population.absorb(&other.population);
        self.events.absorb(&other.events);
    }

    fn finalize(self) -> AttributeCurve {
        let mut points = Vec::new();
        for (bin, label) in self.labels.iter().enumerate() {
            let mut series = Vec::new();
            let mut machine_weeks = 0usize;
            let mut event_total = 0usize;
            for w in 0..self.weeks {
                let pop = self.population.get(bin, w);
                if pop == 0 {
                    continue;
                }
                machine_weeks += pop as usize;
                event_total += self.events.get(bin, w) as usize;
                series.push(self.events.get(bin, w) as f64 / pop as f64);
            }
            let Some(s) = Summary::of(&series) else {
                continue;
            };
            points.push(CurvePoint {
                label: label.clone(),
                mean: s.mean,
                p25: s.p25,
                p75: s.p75,
                machine_weeks,
                events: event_total,
            });
        }
        AttributeCurve {
            attribute: self.attribute,
            points,
        }
    }
}

/// Computes a weekly-rate curve over attribute `attr`.
///
/// `attr(machine, week)` returns the machine's bucket attribute for that
/// week, or `None` to exclude the machine-week (e.g. missing telemetry).
/// For each bucket, the weekly rate series is
/// `events(bucket, week) / machines(bucket, week)` over all weeks where the
/// bucket is populated.
pub fn weekly_rate_by(
    dataset: &FailureDataset,
    attribute: &str,
    bins: &Bins,
    kind: MachineKind,
    mut attr: impl FnMut(&Machine, usize) -> Option<f64>,
) -> AttributeCurve {
    let weeks = dataset.horizon().num_weeks();
    let mut counts = CurveCounts::new(attribute, bins, weeks);

    // Assign machine-weeks to bins: one flat machines × weeks matrix of
    // small bin ids instead of a Vec<Option<usize>> per machine.
    let machines = dataset.machines();
    let mut bin_of_machine_week = vec![NO_BIN; machines.len() * weeks];
    for (m, row) in machines.iter().zip(bin_of_machine_week.chunks_mut(weeks)) {
        if m.kind() == kind {
            counts.observe_machine_weeks_into(bins, |w| attr(m, w), row);
        }
    }

    // Count events per (bin, week): a dense scan over the flat grid.
    for ev in dataset.events() {
        let Some(w) = dataset.horizon().week_of(ev.at()) else {
            continue;
        };
        let bin = bin_of_machine_week[ev.machine().index() * weeks + w];
        if bin != NO_BIN {
            counts.add_event(bin as usize, w);
        }
    }

    counts.finalize()
}

/// [`weekly_rate_by`] for week-invariant attributes (capacity,
/// consolidation level, on/off rate): `attr` runs once per machine instead
/// of once per machine-week, and events are attributed through a flat
/// per-machine bin table.
pub fn weekly_rate_by_machine(
    dataset: &FailureDataset,
    attribute: &str,
    bins: &Bins,
    kind: MachineKind,
    attr: impl FnMut(&Machine) -> Option<f64>,
) -> AttributeCurve {
    bin_machines(dataset, attribute, bins, kind, attr)
        .0
        .finalize()
}

/// Single-pass rate curve plus population-share panel for a week-invariant
/// attribute — the Fig. 9/10 shape. Machines are binned exactly once and
/// the same bin table feeds both panels, so the two no longer each
/// recompute the attribute per machine.
pub fn rate_and_share_by_machine(
    dataset: &FailureDataset,
    attribute: &str,
    bins: &Bins,
    kind: MachineKind,
    attr: impl FnMut(&Machine) -> Option<f64>,
) -> (AttributeCurve, Vec<(String, f64)>) {
    let (counts, bin_of_machine) = bin_machines(dataset, attribute, bins, kind, attr);
    let mut per_bin = vec![0u64; bins.len()];
    for &bin in &bin_of_machine {
        if bin != NO_BIN {
            per_bin[bin as usize] += 1;
        }
    }
    (counts.finalize(), share_from_counts(bins, &per_bin))
}

/// Shared core of the week-invariant fast paths: bins every machine of
/// `kind` once, counts all its observation weeks via the constant path, and
/// attributes events through the per-machine bin table.
fn bin_machines(
    dataset: &FailureDataset,
    attribute: &str,
    bins: &Bins,
    kind: MachineKind,
    mut attr: impl FnMut(&Machine) -> Option<f64>,
) -> (CurveCounts, Vec<u16>) {
    let weeks = dataset.horizon().num_weeks();
    let mut counts = CurveCounts::new(attribute, bins, weeks);

    let machines = dataset.machines();
    let mut bin_of_machine = vec![NO_BIN; machines.len()];
    for (m, slot) in machines.iter().zip(&mut bin_of_machine) {
        if m.kind() == kind {
            if let Some(bin) = counts.observe_machine_constant(bins, attr(m)) {
                *slot = bin as u16;
            }
        }
    }

    for ev in dataset.events() {
        let Some(w) = dataset.horizon().week_of(ev.at()) else {
            continue;
        };
        let bin = bin_of_machine[ev.machine().index()];
        if bin != NO_BIN {
            counts.add_event(bin as usize, w);
        }
    }

    (counts, bin_of_machine)
}

/// Normalizes per-bin machine counts into `(label, share)` rows, the shape
/// of the Fig. 9/10 population-share panels.
pub fn share_from_counts(bins: &Bins, counts: &[u64]) -> Vec<(String, f64)> {
    let total: u64 = counts.iter().sum();
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (bins.label(i).to_string(), c as f64 / total.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use dcfail_stats::binning::Bins;

    #[test]
    fn curve_rate_normalizes_by_population() {
        let ds = testutil::dataset();
        // Single catch-all bin → curve mean equals the overall weekly rate.
        let bins = Bins::from_edges(vec![0.0, 1e9]);
        let curve = weekly_rate_by(ds, "all", &bins, MachineKind::Pm, |_, _| Some(1.0));
        assert_eq!(curve.points.len(), 1);
        let fig2 = crate::rates::weekly_failure_rates(ds);
        assert!(
            (curve.points[0].mean - fig2.all_pm.mean).abs() < 1e-9,
            "curve {} vs fig2 {}",
            curve.points[0].mean,
            fig2.all_pm.mean
        );
    }

    #[test]
    fn events_and_machine_weeks_are_consistent() {
        let ds = testutil::dataset();
        let bins = Bins::discrete(&[1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 64.0]);
        let curve = weekly_rate_by(ds, "cpus", &bins, MachineKind::Pm, |m, _| {
            Some(m.capacity().cpus() as f64)
        });
        let total_events: usize = curve.points.iter().map(|p| p.events).sum();
        let expected = ds
            .events()
            .iter()
            .filter(|e| ds.machine(e.machine()).is_pm())
            .count();
        assert_eq!(total_events, expected);
        let total_mw: usize = curve.points.iter().map(|p| p.machine_weeks).sum();
        assert_eq!(total_mw, ds.population(MachineKind::Pm, None) * 52);
    }

    #[test]
    fn excluded_machine_weeks_drop_out() {
        let ds = testutil::tiny();
        let bins = Bins::from_edges(vec![0.0, 2.0]);
        let curve = weekly_rate_by(ds, "none", &bins, MachineKind::Vm, |_, _| None);
        assert!(curve.points.is_empty());
        assert!(curve.dynamic_range().is_none());
    }

    #[test]
    fn constant_path_matches_per_week_path() {
        let bins = Bins::from_edges(vec![0.0, 1.0, 2.0]);
        let mut per_week = CurveCounts::new("x", &bins, 5);
        let a = per_week.observe_machine_weeks(&bins, |_| Some(1.5));
        let b = per_week.observe_machine_weeks(&bins, |_| None);
        let mut constant = CurveCounts::new("x", &bins, 5);
        let ca = constant.observe_machine_constant(&bins, Some(1.5));
        let cb = constant.observe_machine_constant(&bins, None);
        assert_eq!(constant, per_week);
        assert_eq!(ca, a[0]);
        assert!(a.iter().all(|&w| w == ca));
        assert_eq!(cb, None);
        assert!(b.iter().all(Option::is_none));
        // Out-of-range value: no bin, no counts.
        assert_eq!(constant.observe_machine_constant(&bins, Some(7.0)), None);
        assert_eq!(constant, per_week);
    }

    #[test]
    fn machine_fast_path_matches_generic_path() {
        let ds = testutil::dataset();
        let bins = Bins::discrete(&[1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 64.0]);
        let fast = weekly_rate_by_machine(ds, "cpus", &bins, MachineKind::Pm, |m| {
            Some(m.capacity().cpus() as f64)
        });
        let generic = weekly_rate_by(ds, "cpus", &bins, MachineKind::Pm, |m, _| {
            Some(m.capacity().cpus() as f64)
        });
        assert_eq!(fast, generic);
    }

    #[test]
    fn rate_and_share_single_pass_matches_separate_panels() {
        let ds = testutil::dataset();
        let bins = Bins::from_edges(vec![0.0, 2.0, 4.0, 1e9]);
        let attr = |m: &Machine| Some(m.capacity().cpus() as f64);
        let (curve, shares) = rate_and_share_by_machine(ds, "cpus", &bins, MachineKind::Vm, attr);
        assert_eq!(
            curve,
            weekly_rate_by_machine(ds, "cpus", &bins, MachineKind::Vm, attr)
        );
        // Shares equal an independent per-machine count.
        let mut counts = vec![0u64; bins.len()];
        for m in ds.machines_of_kind(MachineKind::Vm) {
            if let Some(b) = bins.index_of(m.capacity().cpus() as f64) {
                counts[b] += 1;
            }
        }
        assert_eq!(shares, share_from_counts(&bins, &counts));
    }

    #[test]
    fn curve_counts_absorb_law() {
        let bins = Bins::from_edges(vec![0.0, 1.0, 2.0]);
        let weeks = 4;

        // Whole pass: two machines observed in one accumulator.
        let mut whole = CurveCounts::new("x", &bins, weeks);
        let a = whole.observe_machine_weeks(&bins, |w| Some(w as f64 / 2.0));
        let b = whole.observe_machine_weeks(&bins, |_| Some(1.5));
        whole.add_event(a[0].unwrap(), 0);
        whole.add_event(b[1].unwrap(), 1);

        // Sharded pass: one machine per accumulator, absorbed into identity.
        let mut s1 = CurveCounts::new("x", &bins, weeks);
        let a1 = s1.observe_machine_weeks(&bins, |w| Some(w as f64 / 2.0));
        s1.add_event(a1[0].unwrap(), 0);
        let mut s2 = CurveCounts::new("x", &bins, weeks);
        let b2 = s2.observe_machine_weeks(&bins, |_| Some(1.5));
        s2.add_event(b2[1].unwrap(), 1);

        let mut merged = CurveCounts::identity();
        merged.absorb(&s1);
        merged.absorb(&s2);
        assert_eq!(merged, whole, "absorb must equal the sequential pass");

        // Identity is neutral on both sides.
        let mut right = s1.clone();
        right.absorb(&CurveCounts::identity());
        assert_eq!(right, s1);

        assert_eq!(merged.finalize(), whole.finalize());
    }

    #[test]
    fn window_column_flush_matches_observe_path() {
        let bins = Bins::from_edges(vec![0.0, 1.0, 2.0]);
        let weeks = 3;

        // Batch path: two machines observed per week, one event each in
        // weeks 0 and 1.
        let mut batch = CurveCounts::new("x", &bins, weeks);
        let a = batch.observe_machine_weeks(&bins, |_| Some(0.5));
        let b = batch.observe_machine_weeks(&bins, |_| Some(1.5));
        batch.add_event(a[0].unwrap(), 0);
        batch.add_event(b[1].unwrap(), 1);

        // Streaming path: the same counts arrive one window column at a
        // time, pre-aggregated per bin.
        let mut stream = CurveCounts::new("x", &bins, weeks);
        for week in 0..weeks {
            // Both bins hold one machine every week.
            stream.add_window_column(0, week, 1, u64::from(week == 0));
            stream.add_window_column(1, week, 1, u64::from(week == 1));
        }
        assert_eq!(stream, batch);
        // Zero-sized flushes are no-ops.
        stream.add_window_column(0, 2, 0, 0);
        assert_eq!(stream, batch);
        assert_eq!(stream.finalize(), batch.finalize());
    }

    #[test]
    fn mean_of_and_dynamic_range() {
        let curve = AttributeCurve {
            attribute: "x".into(),
            points: vec![
                CurvePoint {
                    label: "a".into(),
                    mean: 0.002,
                    p25: 0.0,
                    p75: 0.004,
                    machine_weeks: 10,
                    events: 1,
                },
                CurvePoint {
                    label: "b".into(),
                    mean: 0.01,
                    p25: 0.005,
                    p75: 0.015,
                    machine_weeks: 10,
                    events: 5,
                },
            ],
        };
        assert_eq!(curve.mean_of("b"), Some(0.01));
        assert_eq!(curve.mean_of("zz"), None);
        assert!((curve.dynamic_range().unwrap() - 5.0).abs() < 1e-12);
        // Weighted range drops sparse buckets.
        assert!((curve.dynamic_range_min_weight(0.1).unwrap() - 5.0).abs() < 1e-12);
        let mut sparse = curve.clone();
        sparse.points.push(CurvePoint {
            label: "c".into(),
            mean: 1.0,
            p25: 0.0,
            p75: 1.0,
            machine_weeks: 1,
            events: 1,
        });
        assert!(sparse.dynamic_range().unwrap() > 100.0);
        assert!((sparse.dynamic_range_min_weight(0.2).unwrap() - 5.0).abs() < 1e-12);
    }
}
