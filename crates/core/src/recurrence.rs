//! Recurrent vs random failures (Fig. 5, Table V).
//!
//! The **recurrent failure probability** is: given a server fails, the
//! probability it fails again within a day / week / month. The **random
//! failure probability** is: the probability any server fails at least once
//! within a week. Their ratio — ~35× for PMs and ~42× for VMs in the paper —
//! is the headline evidence that failures are not memoryless.

use dcfail_model::prelude::*;
use serde::{Deserialize, Serialize};

/// Given a failure, the probability of another failure of the same machine
/// within `window`.
///
/// Only failures whose full window fits inside the observation horizon are
/// counted (right-censoring would otherwise bias the probability down).
pub fn recurrent_probability(
    dataset: &FailureDataset,
    kind: MachineKind,
    window: SimDuration,
    subsystem: Option<SubsystemId>,
) -> Option<f64> {
    let mut eligible = 0usize;
    let mut recurred = 0usize;
    for (machine, _) in dataset.failing_machines() {
        let m = dataset.machine(machine);
        if m.kind() != kind || subsystem.is_some_and(|s| m.subsystem() != s) {
            continue;
        }
        let times: Vec<SimTime> = dataset.events_for(machine).map(FailureEvent::at).collect();
        for (i, &t) in times.iter().enumerate() {
            if t + window >= dataset.horizon().end() {
                continue; // censored
            }
            eligible += 1;
            if times[i + 1..].iter().any(|&u| u > t && u - t <= window) {
                recurred += 1;
            }
        }
    }
    (eligible > 0).then(|| recurred as f64 / eligible as f64)
}

/// The probability that a server of the group fails at least once in a week
/// (mean over observation weeks).
pub fn random_weekly_probability(
    dataset: &FailureDataset,
    kind: MachineKind,
    subsystem: Option<SubsystemId>,
) -> Option<f64> {
    let population = dataset.population(kind, subsystem);
    if population == 0 {
        return None;
    }
    let weeks = dataset.horizon().num_weeks();
    // Distinct failing machines per week.
    let mut failing: Vec<std::collections::BTreeSet<MachineId>> =
        vec![std::collections::BTreeSet::new(); weeks];
    for ev in dataset.events() {
        let m = dataset.machine(ev.machine());
        if m.kind() != kind || subsystem.is_some_and(|s| m.subsystem() != s) {
            continue;
        }
        if let Some(w) = dataset.horizon().week_of(ev.at()) {
            failing[w].insert(ev.machine());
        }
    }
    let mean = failing
        .iter()
        .map(|set| set.len() as f64 / population as f64)
        .sum::<f64>()
        / weeks as f64;
    Some(mean)
}

/// Fig. 5: recurrence probabilities at day/week/month windows per kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecurrenceWindows {
    /// P(recurrent failure within 24 hours).
    pub day: f64,
    /// P(recurrent failure within a week).
    pub week: f64,
    /// P(recurrent failure within a 28-day month).
    pub month: f64,
}

/// Computes Fig. 5 for one machine kind.
pub fn fig5(dataset: &FailureDataset, kind: MachineKind) -> Option<RecurrenceWindows> {
    Some(RecurrenceWindows {
        day: recurrent_probability(dataset, kind, DAY, None)?,
        week: recurrent_probability(dataset, kind, WEEK, None)?,
        month: recurrent_probability(dataset, kind, MONTH, None)?,
    })
}

/// One Table V cell group: random weekly probability, weekly recurrence and
/// their ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Cell {
    /// Random weekly failure probability.
    pub random: f64,
    /// Recurrent probability within a week.
    pub recurrent: f64,
}

impl Table5Cell {
    /// Recurrent-to-random intensity ratio (the paper's 35×/42×); `None`
    /// when the random probability is zero.
    pub fn ratio(&self) -> Option<f64> {
        (self.random > 0.0).then(|| self.recurrent / self.random)
    }
}

/// Table V: random vs recurrent weekly probabilities for "All" plus each
/// subsystem, per machine kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Column labels: "All", then subsystem names.
    pub columns: Vec<String>,
    /// PM cells, parallel to `columns` (`None` when no data).
    pub pm: Vec<Option<Table5Cell>>,
    /// VM cells, parallel to `columns`.
    pub vm: Vec<Option<Table5Cell>>,
}

/// Computes Table V.
pub fn table5(dataset: &FailureDataset) -> Table5 {
    let mut columns = vec!["All".to_string()];
    let mut groups: Vec<Option<SubsystemId>> = vec![None];
    for meta in dataset.topology().subsystems() {
        columns.push(meta.name().to_string());
        groups.push(Some(meta.id()));
    }
    let cell = |kind: MachineKind, sys: Option<SubsystemId>| -> Option<Table5Cell> {
        let random = random_weekly_probability(dataset, kind, sys)?;
        let recurrent = recurrent_probability(dataset, kind, WEEK, sys).unwrap_or(0.0);
        Some(Table5Cell { random, recurrent })
    };
    Table5 {
        pm: groups.iter().map(|&g| cell(MachineKind::Pm, g)).collect(),
        vm: groups.iter().map(|&g| cell(MachineKind::Vm, g)).collect(),
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn recurrence_grows_sublinearly_with_window() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let f = fig5(ds, kind).expect("population fails");
            assert!(f.day < f.week, "{kind}: day {} week {}", f.day, f.week);
            assert!(f.week < f.month);
            // Sub-linear: weekly is below 7× daily (the simulator's
            // day-granular clock makes the daily window conservative).
            assert!(
                f.week < 7.0 * f.day,
                "{kind}: week {} vs day {}",
                f.week,
                f.day
            );
            // Subsequent failures cluster tightly: most of the monthly
            // recurrence is already there within a week.
            assert!(f.week > 0.5 * f.month);
        }
    }

    #[test]
    fn pm_recurrence_exceeds_vm_recurrence() {
        let ds = testutil::dataset();
        let pm = fig5(ds, MachineKind::Pm).unwrap();
        let vm = fig5(ds, MachineKind::Vm).unwrap();
        // Paper: PM weekly recurrence ≈ 0.22, VM ≈ 0.16.
        assert!(pm.week > vm.week, "pm {} vm {}", pm.week, vm.week);
        assert!((pm.week - 0.22).abs() < 0.10, "PM weekly {}", pm.week);
        assert!((vm.week - 0.16).abs() < 0.10, "VM weekly {}", vm.week);
    }

    #[test]
    fn table5_ratios_match_paper_magnitudes() {
        let ds = testutil::dataset();
        let t5 = table5(ds);
        assert_eq!(t5.columns.len(), 6);
        let pm_all = t5.pm[0].expect("PM data");
        let vm_all = t5.vm[0].expect("VM data");
        // Paper: random ≈ 0.0062 (PM) / 0.0038 (VM).
        assert!(
            pm_all.random > 0.002 && pm_all.random < 0.012,
            "PM random {}",
            pm_all.random
        );
        assert!(pm_all.random > vm_all.random);
        // Ratios: PM ≈ 35×, VM ≈ 42× — at minimum well above 10× and with
        // the VM ratio exceeding the PM ratio.
        let pm_ratio = pm_all.ratio().unwrap();
        let vm_ratio = vm_all.ratio().unwrap();
        assert!(pm_ratio > 10.0, "PM ratio {pm_ratio}");
        assert!(vm_ratio > 10.0, "VM ratio {vm_ratio}");
        assert!(
            vm_ratio > pm_ratio,
            "VM ratio {vm_ratio} should exceed PM ratio {pm_ratio}"
        );
    }

    #[test]
    fn sys2_vm_cell_is_empty_or_zero() {
        let ds = testutil::dataset();
        let t5 = table5(ds);
        // Sys II VMs never fail: random probability 0 → ratio None.
        if let Some(cell) = t5.vm[2] {
            assert_eq!(cell.random, 0.0);
            assert!(cell.ratio().is_none());
        }
    }

    #[test]
    fn random_probability_bounded_by_rate() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let random = random_weekly_probability(ds, kind, None).unwrap();
            let series = crate::rates::rate_series(ds, kind, None, crate::rates::Granularity::Week);
            let mean_rate = series.iter().sum::<f64>() / series.len() as f64;
            // P(≥1 failure) ≤ E[#failures].
            assert!(random <= mean_rate + 1e-12);
            assert!(random > 0.0);
        }
    }

    #[test]
    fn empty_group_returns_none() {
        let ds = testutil::tiny();
        assert!(
            random_weekly_probability(ds, MachineKind::Pm, Some(SubsystemId::new(42))).is_none()
        );
        assert!(
            recurrent_probability(ds, MachineKind::Pm, WEEK, Some(SubsystemId::new(42))).is_none()
        );
    }
}
