//! VM failures vs age (Fig. 6).
//!
//! Age = failure timestamp − VM creation date. Only the ~75% of VMs whose
//! creation falls inside the two-year telemetry window contribute; the rest
//! have unknown age and are filtered, as in the paper. The headline result:
//! **no bathtub** — the failure-age CDF hugs the diagonal (≈ uniform) with a
//! weak positive PDF trend.

use dcfail_model::prelude::*;
use dcfail_stats::dist::Uniform;
use dcfail_stats::empirical::{Ecdf, Histogram};
use dcfail_stats::gof::{ks_test, KsTest};

/// Oldest observable VM age in days (two-year telemetry window).
pub const MAX_AGE_DAYS: f64 = 730.0;

/// Fig. 6 analysis result.
#[derive(Debug, Clone)]
pub struct AgeAnalysis {
    /// Ages (days) at failure, for VM failures with known creation dates.
    pub ages_days: Vec<f64>,
    /// ECDF of failure ages.
    pub ecdf: Ecdf,
    /// Failure-age density (bin center, pdf) over `[0, MAX_AGE_DAYS]`.
    pub density: Vec<(f64, f64)>,
    /// KS test against the uniform distribution on the age range (the
    /// paper: "the CDF curve is very close to the diagonal line").
    pub uniform_ks: KsTest,
    /// Least-squares slope of the density vs age (per day); positive ⇒ old
    /// VMs fail (weakly) more.
    pub trend_slope: f64,
    /// Share of VM failures with a known age.
    pub known_age_fraction: f64,
    /// Largest deviation of the CDF from the diagonal.
    pub max_diagonal_gap: f64,
    /// Exposure-normalized hazard by age: `(age-bin center days, failures
    /// per VM-day at that age)`. The raw failure-age density confounds risk
    /// with the uneven per-age population ("VMs are created in a batch
    /// manner"); dividing by the observed VM-days at each age removes that.
    pub hazard_by_age: Vec<(f64, f64)>,
}

/// Ages in days at failure for VMs with known creation dates.
pub fn vm_failure_ages_days(dataset: &FailureDataset) -> Vec<f64> {
    dataset
        .events()
        .iter()
        .filter_map(|ev| {
            let m = dataset.machine(ev.machine());
            if !m.is_vm() {
                return None;
            }
            let age = m.age_days_at(ev.at())?;
            (age <= MAX_AGE_DAYS).then_some(age)
        })
        .collect()
}

/// Observed VM-days of exposure per age bin over the observation window.
fn exposure_days(dataset: &FailureDataset, bins: usize, max_age: f64) -> Vec<f64> {
    let mut exposure = vec![0.0f64; bins];
    let width = max_age / bins as f64;
    let horizon = dataset.horizon();
    for m in dataset.machines() {
        if !m.is_vm() {
            continue;
        }
        let Some(created) = m.created_at() else {
            continue;
        };
        // Age interval observable inside the horizon, clipped to the plot
        // range.
        let age_lo = (horizon.start() - created).as_days().max(0.0);
        let age_hi = ((horizon.end() - created).as_days()).min(max_age);
        if age_hi <= age_lo {
            continue;
        }
        for (b, e) in exposure.iter_mut().enumerate() {
            let lo = (b as f64 * width).max(age_lo);
            let hi = ((b + 1) as f64 * width).min(age_hi);
            if hi > lo {
                *e += hi - lo;
            }
        }
    }
    exposure
}

/// Runs the Fig. 6 analysis; `None` with fewer than 20 aged failures.
pub fn analyze(dataset: &FailureDataset) -> Option<AgeAnalysis> {
    let ages = vm_failure_ages_days(dataset);
    if ages.len() < 20 {
        return None;
    }
    let vm_failures = dataset
        .events()
        .iter()
        .filter(|ev| dataset.machine(ev.machine()).is_vm())
        .count();

    // The plot range ends exactly at the oldest observed failure age. The
    // old code padded the range with `+ 1e-9` so the half-open histogram
    // would not misfile that defining observation — the right-closed add
    // handles it exactly instead. A sample with no age spread (all ages 0)
    // has no density/CDF to analyze, so it is reported as "not enough data".
    let max_age = ages.iter().copied().fold(0.0f64, f64::max);
    if max_age <= 0.0 {
        return None;
    }
    let uniform = Uniform::new(0.0, max_age).expect("valid range");
    let uniform_ks = ks_test(&ages, &uniform).ok()?;

    let mut hist = Histogram::new(0.0, max_age, 20);
    for &age in &ages {
        hist.add_right_closed(age);
    }
    let density = hist.density();
    let trend_slope = least_squares_slope(&density);

    let exposure = exposure_days(dataset, 20, max_age);
    let hazard_by_age: Vec<(f64, f64)> = hist
        .counts()
        .iter()
        .enumerate()
        .filter(|&(b, _)| exposure[b] > 0.0)
        .map(|(b, &count)| (hist.bin_center(b), count as f64 / exposure[b]))
        .collect();

    let ecdf = Ecdf::new(&ages);
    let max_diagonal_gap = (0..=100)
        .map(|i| {
            let x = max_age * i as f64 / 100.0;
            (ecdf.eval(x) - x / max_age).abs()
        })
        .fold(0.0f64, f64::max);

    Some(AgeAnalysis {
        uniform_ks,
        density,
        trend_slope,
        known_age_fraction: ages.len() as f64 / vm_failures.max(1) as f64,
        max_diagonal_gap,
        hazard_by_age,
        ecdf,
        ages_days: ages,
    })
}

fn least_squares_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        0.0
    } else {
        sxy / sxx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn age_cdf_is_near_uniform_with_weak_positive_trend() {
        let a = analyze(testutil::dataset()).expect("enough aged failures");
        // No bathtub: the CDF stays close to the diagonal.
        assert!(
            a.max_diagonal_gap < 0.2,
            "diagonal gap {}",
            a.max_diagonal_gap
        );
        // Weak positive trend with age (paper's second finding), measured
        // on the exposure-normalized hazard: old VMs are at least as much
        // at risk as young ones — no infant-mortality bathtub. (The raw
        // density cannot show this cleanly: the per-age population is
        // uneven, as the paper itself notes.)
        let hz = &a.hazard_by_age;
        let third = hz.len() / 3;
        let young: f64 = hz[..third].iter().map(|p| p.1).sum::<f64>() / third as f64;
        let old: f64 = hz[hz.len() - third..].iter().map(|p| p.1).sum::<f64>() / third as f64;
        assert!(
            old > 0.8 * young,
            "old hazard {old} vs young hazard {young}"
        );
        assert!(
            old < 3.0 * young,
            "trend should stay weak: {old} vs {young}"
        );
        assert!(a.trend_slope.abs() < 2e-6, "slope {}", a.trend_slope);
    }

    #[test]
    fn ages_are_in_range_and_mostly_known() {
        let a = analyze(testutil::dataset()).unwrap();
        assert!(a
            .ages_days
            .iter()
            .all(|&d| (0.0..=MAX_AGE_DAYS).contains(&d)));
        // Paper: ~75% of VMs (and so roughly of VM failures) have known age.
        assert!(
            a.known_age_fraction > 0.55 && a.known_age_fraction < 0.95,
            "known-age fraction {}",
            a.known_age_fraction
        );
    }

    #[test]
    fn density_integrates_to_one() {
        let a = analyze(testutil::dataset()).unwrap();
        let width = a.density[1].0 - a.density[0].0;
        let integral: f64 = a.density.iter().map(|&(_, d)| d * width).sum();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn slope_helper_is_correct() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((least_squares_slope(&pts) - 2.0).abs() < 1e-12);
        assert_eq!(least_squares_slope(&[(1.0, 5.0), (1.0, 7.0)]), 0.0);
    }

    #[test]
    fn analyze_requires_enough_data() {
        // The tiny dataset still usually has > 20 aged VM failures, so test
        // the threshold directly on the raw extractor instead.
        let ages = vm_failure_ages_days(testutil::tiny());
        assert!(ages.iter().all(|&a| a >= 0.0));
    }
}
