//! Failure rate vs resource capacity (Fig. 7).
//!
//! Four panels: CPU counts (a), memory size (b), disk capacity (c) and
//! number of disks (d). CPU and memory exist for PMs and VMs; the paper has
//! no PM disk data, so the disk panels are VM-only.

use crate::curve::{weekly_rate_by_machine, AttributeCurve};
use dcfail_model::prelude::*;
use dcfail_stats::binning::Bins;

/// CPU-count bins per machine kind (the paper's x-axes).
fn cpu_bins(kind: MachineKind) -> Bins {
    match kind {
        MachineKind::Pm => Bins::discrete(&[1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 64.0]),
        MachineKind::Vm => Bins::discrete(&[1.0, 2.0, 4.0, 8.0]),
    }
}

/// Memory bins in GB per machine kind.
fn memory_bins(kind: MachineKind) -> Bins {
    match kind {
        MachineKind::Pm => Bins::discrete(&[2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]),
        MachineKind::Vm => Bins::discrete(&[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
    }
}

/// Fig. 7(a): weekly failure rate vs number of (v)CPUs.
pub fn rate_by_cpu(dataset: &FailureDataset, kind: MachineKind) -> AttributeCurve {
    weekly_rate_by_machine(dataset, "cpu count", &cpu_bins(kind), kind, |m| {
        Some(m.capacity().cpus() as f64)
    })
}

/// Fig. 7(b): weekly failure rate vs memory size (GB).
pub fn rate_by_memory(dataset: &FailureDataset, kind: MachineKind) -> AttributeCurve {
    weekly_rate_by_machine(dataset, "memory GB", &memory_bins(kind), kind, |m| {
        Some(m.capacity().memory_gb())
    })
}

/// Fig. 7(c): weekly VM failure rate vs total disk capacity (GB). VM-only:
/// the dataset carries no PM disk attributes, matching the paper.
pub fn rate_by_disk_capacity(dataset: &FailureDataset) -> AttributeCurve {
    let bins = Bins::discrete(&[
        8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    ]);
    weekly_rate_by_machine(dataset, "disk GB", &bins, MachineKind::Vm, |m| {
        Some(m.capacity().disk_gb() as f64)
    })
}

/// Fig. 7(d): weekly VM failure rate vs number of virtual disks.
pub fn rate_by_disk_count(dataset: &FailureDataset) -> AttributeCurve {
    let bins = Bins::discrete(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    weekly_rate_by_machine(dataset, "disk count", &bins, MachineKind::Vm, |m| {
        Some(m.capacity().disks() as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn pm_cpu_rate_rises_to_24_then_drops() {
        let curve = rate_by_cpu(testutil::dataset(), MachineKind::Pm);
        let low = curve.mean_of("1").or(curve.mean_of("2")).unwrap();
        let peak = curve.mean_of("24").or(curve.mean_of("16")).unwrap();
        assert!(peak > 2.0 * low, "peak {peak} vs low {low}");
        // 32/64-CPU machines are *more* reliable than the 16–24 peak.
        if let Some(big) = curve.mean_of("32").or(curve.mean_of("64")) {
            assert!(big < peak, "32/64-cpu rate {big} vs peak {peak}");
        }
        // Paper: ~5.5× dynamic range for PM CPU counts.
        let range = curve.dynamic_range().unwrap();
        assert!(range > 2.5, "dynamic range {range}");
    }

    #[test]
    fn vm_cpu_rate_increases() {
        let curve = rate_by_cpu(testutil::dataset(), MachineKind::Vm);
        let one = curve.mean_of("1").unwrap();
        let eight = curve.mean_of("8").or(curve.mean_of("4")).unwrap();
        // Paper: ~2.5× from 1 to 8 vCPUs.
        assert!(eight > 1.4 * one, "8cpu {eight} vs 1cpu {one}");
    }

    #[test]
    fn memory_curves_are_bathtub_shaped() {
        let ds = testutil::dataset();
        let pm = rate_by_memory(ds, MachineKind::Pm);
        // Small and large PM memory out-fail the middle.
        let small = pm.mean_of("2").or(pm.mean_of("4")).unwrap();
        let mid = pm.mean_of("16").or(pm.mean_of("8")).unwrap();
        let large = pm
            .mean_of("128")
            .or(pm.mean_of("256"))
            .or(pm.mean_of("64"))
            .unwrap();
        assert!(small > mid, "PM small {small} vs mid {mid}");
        assert!(large > mid, "PM large {large} vs mid {mid}");

        let vm = rate_by_memory(ds, MachineKind::Vm);
        // VM dip in the 4–8 GB range.
        let low = vm.mean_of("1").or(vm.mean_of("2")).unwrap();
        let dip = vm.mean_of("8").or(vm.mean_of("4")).unwrap();
        assert!(dip < low, "VM dip {dip} vs low {low}");
    }

    #[test]
    fn disk_count_has_strongest_vm_capacity_impact() {
        let ds = testutil::dataset();
        let by_count = rate_by_disk_count(ds);
        let one = by_count.mean_of("1").unwrap();
        // Pool the ≥4-disk bins weighted by exposure: the 5- and 6-disk
        // configurations are rare enough that a single bin's realization
        // is noisy.
        let high: Vec<_> = by_count
            .points
            .iter()
            .filter(|p| ["4", "5", "6"].contains(&p.label.as_str()))
            .collect();
        let weeks: usize = high.iter().map(|p| p.machine_weeks).sum();
        let many = high
            .iter()
            .map(|p| p.mean * p.machine_weeks as f64)
            .sum::<f64>()
            / weeks.max(1) as f64;
        // Paper: ~10× from 1 to 6 disks; spatial dilution caps ours ~3×.
        assert!(many > 2.5 * one, "many-disk {many} vs one-disk {one}");

        // Disk capacity: small disks rare failures, ≥32 GB roughly flat.
        let by_cap = rate_by_disk_capacity(ds);
        let small = by_cap.mean_of("8").unwrap();
        let mid = by_cap.mean_of("64").unwrap();
        assert!(mid > small, "32+GB {mid} vs 8GB {small}");
        let flat: Vec<f64> = ["64", "128", "256", "512"]
            .iter()
            .filter_map(|l| by_cap.mean_of(l))
            .collect();
        let lo = flat.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = flat.iter().copied().fold(0.0f64, f64::max);
        assert!(hi / lo < 2.5, "flat region spread {}", hi / lo);

        // Count impact beats capacity impact (paper's conclusion).
        assert!(
            by_count.dynamic_range().unwrap() > by_cap.dynamic_range().unwrap(),
            "count {} vs capacity {}",
            by_count.dynamic_range().unwrap(),
            by_cap.dynamic_range().unwrap()
        );
    }

    #[test]
    fn pm_cpu_impact_exceeds_vm_cpu_impact() {
        let ds = testutil::dataset();
        let pm = rate_by_cpu(ds, MachineKind::Pm).dynamic_range().unwrap();
        let vm = rate_by_cpu(ds, MachineKind::Vm).dynamic_range().unwrap();
        // Paper: 5.5× (PM) vs 2.5× (VM).
        assert!(pm > vm, "pm {pm} vs vm {vm}");
    }

    #[test]
    fn curves_have_populated_buckets() {
        let ds = testutil::dataset();
        for curve in [
            rate_by_cpu(ds, MachineKind::Pm),
            rate_by_cpu(ds, MachineKind::Vm),
            rate_by_memory(ds, MachineKind::Pm),
            rate_by_memory(ds, MachineKind::Vm),
            rate_by_disk_capacity(ds),
            rate_by_disk_count(ds),
        ] {
            assert!(
                curve.points.len() >= 3,
                "{}: too few buckets",
                curve.attribute
            );
            for p in &curve.points {
                assert!(p.machine_weeks > 0);
                assert!(p.mean >= 0.0);
                assert!(p.p25 <= p.p75);
            }
        }
    }
}
