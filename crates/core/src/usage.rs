//! Failure rate vs resource usage (Fig. 8).
//!
//! Usage attributes vary week by week, so machine-weeks (not machines) are
//! bucketed: a machine at 5% CPU in March and 40% in June contributes to
//! both buckets. Panels: CPU utilization (a), memory utilization (b), disk
//! utilization (c, VM-only) and network volume in Kbps (d, VM-only) — the
//! paper has no PM disk/network usage either.

use crate::curve::{weekly_rate_by, AttributeCurve};
use dcfail_model::prelude::*;
use dcfail_stats::binning::Bins;

/// Utilization-percentage bins (0–100 in 10-point steps) shared by the
/// Fig. 8 CPU/memory/disk panels.
pub fn util_bins() -> Bins {
    Bins::linear(0.0, 100.0, 10)
}

/// Network-volume bins (power-of-two Kbps over the paper's 2 Kbps – 8 Mbps
/// range) for Fig. 8(d).
pub fn net_bins() -> Bins {
    Bins::log2(1, 13) // 2 Kbps .. 8192 Kbps
}

/// Fig. 8(a): weekly failure rate vs CPU utilization (10-point bins).
pub fn rate_by_cpu_util(dataset: &FailureDataset, kind: MachineKind) -> AttributeCurve {
    weekly_rate_by(dataset, "cpu util %", &util_bins(), kind, |m, w| {
        dataset
            .telemetry()
            .usage_in_week(m.id(), w)
            .map(|u| u.cpu_pct as f64)
    })
}

/// Fig. 8(b): weekly failure rate vs memory utilization.
pub fn rate_by_mem_util(dataset: &FailureDataset, kind: MachineKind) -> AttributeCurve {
    weekly_rate_by(dataset, "mem util %", &util_bins(), kind, |m, w| {
        dataset
            .telemetry()
            .usage_in_week(m.id(), w)
            .map(|u| u.mem_pct as f64)
    })
}

/// Fig. 8(c): weekly VM failure rate vs disk-space utilization.
pub fn rate_by_disk_util(dataset: &FailureDataset) -> AttributeCurve {
    weekly_rate_by(
        dataset,
        "disk util %",
        &util_bins(),
        MachineKind::Vm,
        |m, w| {
            dataset
                .telemetry()
                .usage_in_week(m.id(), w)
                .map(|u| u.disk_pct as f64)
        },
    )
}

/// Fig. 8(d): weekly VM failure rate vs network volume (Kbps, power-of-two
/// bins over the paper's 2 Kbps – 8 Mbps range).
pub fn rate_by_network(dataset: &FailureDataset) -> AttributeCurve {
    let bins = net_bins();
    weekly_rate_by(dataset, "net kbps", &bins, MachineKind::Vm, |m, w| {
        dataset
            .telemetry()
            .usage_in_week(m.id(), w)
            .map(|u| u.net_kbps as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    fn low_mid_rates(curve: &AttributeCurve) -> (f64, f64) {
        // Mean of the 0-20% buckets vs the 20-40% buckets, weighting by
        // machine-weeks.
        let avg = |labels: &[&str]| {
            let pts: Vec<_> = curve
                .points
                .iter()
                .filter(|p| labels.contains(&p.label.as_str()))
                .collect();
            let mw: usize = pts.iter().map(|p| p.machine_weeks).sum();
            pts.iter()
                .map(|p| p.mean * p.machine_weeks as f64)
                .sum::<f64>()
                / mw.max(1) as f64
        };
        (avg(&["0-10", "10-20"]), avg(&["20-30", "30-40"]))
    }

    #[test]
    fn vm_cpu_util_rate_increases_while_pm_decreases() {
        let ds = testutil::dataset();
        let vm = rate_by_cpu_util(ds, MachineKind::Vm);
        let (vm_low, vm_mid) = low_mid_rates(&vm);
        assert!(
            vm_mid > 1.3 * vm_low,
            "VM: mid {vm_mid} should exceed low {vm_low}"
        );
        let pm = rate_by_cpu_util(ds, MachineKind::Pm);
        let (pm_low, pm_mid) = low_mid_rates(&pm);
        assert!(
            pm_low > 1.3 * pm_mid,
            "PM: low {pm_low} should exceed mid {pm_mid}"
        );
    }

    #[test]
    fn memory_util_is_inverted_bathtub() {
        let ds = testutil::dataset();
        for kind in MachineKind::ALL {
            let curve = rate_by_mem_util(ds, kind);
            let low = curve.mean_of("0-10").unwrap();
            let mid = curve.mean_of("30-40").or(curve.mean_of("40-50")).unwrap();
            let high = curve
                .mean_of("80-90")
                .or(curve.mean_of("70-80"))
                .or(curve.mean_of("90-100"))
                .unwrap();
            assert!(mid > low, "{kind}: mid {mid} vs low {low}");
            assert!(mid > high, "{kind}: mid {mid} vs high {high}");
        }
    }

    #[test]
    fn pm_memory_util_impact_exceeds_vm() {
        let ds = testutil::dataset();
        let pm = rate_by_mem_util(ds, MachineKind::Pm)
            .dynamic_range()
            .unwrap();
        let vm = rate_by_mem_util(ds, MachineKind::Vm)
            .dynamic_range()
            .unwrap();
        assert!(pm > vm, "pm {pm} vs vm {vm}");
    }

    #[test]
    fn disk_util_mildly_increases() {
        let ds = testutil::dataset();
        let curve = rate_by_disk_util(ds);
        let low = curve.mean_of("0-10").unwrap();
        let high = curve.mean_of("80-90").or(curve.mean_of("70-80")).unwrap();
        assert!(high > low, "high {high} vs low {low}");
        // Milder than the VM CPU effect (the paper's comparison).
        let cpu = rate_by_cpu_util(ds, MachineKind::Vm);
        assert!(curve.dynamic_range().unwrap() < cpu.dynamic_range().unwrap() * 1.5);
    }

    #[test]
    fn network_peaks_at_low_volume() {
        let ds = testutil::dataset();
        let curve = rate_by_network(ds);
        // Rate near the 32-64 Kbps peak beats the megabit tail.
        let peak = curve.mean_of("32-64").or(curve.mean_of("16-32")).unwrap();
        let tail = curve
            .mean_of("4096-8192")
            .or(curve.mean_of("2048-4096"))
            .unwrap();
        assert!(peak > tail, "peak {peak} vs tail {tail}");
    }

    #[test]
    fn usage_buckets_skew_low() {
        let ds = testutil::dataset();
        let curve = rate_by_cpu_util(ds, MachineKind::Vm);
        let total: usize = curve.points.iter().map(|p| p.machine_weeks).sum();
        let low: usize = curve
            .points
            .iter()
            .filter(|p| p.label == "0-10")
            .map(|p| p.machine_weeks)
            .sum();
        // Paper: more than half of machines run at ≤ 10% CPU.
        assert!(low as f64 / total as f64 > 0.5);
    }
}
