//! Follow-on failures by triggering root cause.
//!
//! The paper's related work ([5], El-Sayed & Schroeder) finds "a high
//! correlation among [root-cause categories]. In particular, power-related
//! failures induce a high probability of follow-in failure of any kind".
//! This analysis checks the same question on our dataset: given a failure of
//! class X, how likely is *any* failure of the same machine within a window,
//! and how does that compare to the random weekly probability?

use crate::ClassSource;
use dcfail_model::prelude::*;
use serde::{Deserialize, Serialize};

/// Follow-on statistics for one triggering class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FollowOn {
    /// Triggering failures observed (uncensored).
    pub triggers: usize,
    /// P(any same-machine failure within the window | trigger of this class).
    pub probability: f64,
    /// Share of follow-on failures whose class differs from the trigger.
    pub cross_class_share: f64,
}

/// Computes follow-on probabilities per triggering class, dense by
/// [`FailureClass::index`]; `None` for classes without uncensored triggers.
pub fn follow_on_by_class(
    dataset: &FailureDataset,
    window: SimDuration,
    source: ClassSource,
) -> [Option<FollowOn>; 6] {
    let mut triggers = [0usize; 6];
    let mut followed = [0usize; 6];
    let mut cross = [0usize; 6];
    let end = dataset.horizon().end();
    for (machine, _) in dataset.failing_machines() {
        let events: Vec<(SimTime, FailureClass)> = dataset
            .events_for(machine)
            .map(|e| (e.at(), source.class_of(e)))
            .collect();
        for (i, &(t, class)) in events.iter().enumerate() {
            if t + window >= end {
                continue; // censored window
            }
            triggers[class.index()] += 1;
            if let Some(&(_, next_class)) = events[i + 1..]
                .iter()
                .find(|&&(u, _)| u > t && u - t <= window)
            {
                followed[class.index()] += 1;
                if next_class != class {
                    cross[class.index()] += 1;
                }
            }
        }
    }
    let mut out = [None; 6];
    for class in FailureClass::ALL {
        let i = class.index();
        if triggers[i] == 0 {
            continue;
        }
        out[i] = Some(FollowOn {
            triggers: triggers[i],
            probability: followed[i] as f64 / triggers[i] as f64,
            cross_class_share: if followed[i] == 0 {
                0.0
            } else {
                cross[i] as f64 / followed[i] as f64
            },
        });
    }
    out
}

/// The intensity of follow-on failures relative to random weekly failures:
/// `P(follow-on within a week | class X) / P(random weekly failure)`,
/// aggregated over machine kinds.
pub fn follow_on_ratio(
    dataset: &FailureDataset,
    class: FailureClass,
    source: ClassSource,
) -> Option<f64> {
    let per_class = follow_on_by_class(dataset, WEEK, source);
    let follow = per_class[class.index()]?;
    // Population-wide random weekly probability over both kinds.
    let pm =
        crate::recurrence::random_weekly_probability(dataset, MachineKind::Pm, None).unwrap_or(0.0);
    let vm =
        crate::recurrence::random_weekly_probability(dataset, MachineKind::Vm, None).unwrap_or(0.0);
    let pms = dataset.population(MachineKind::Pm, None) as f64;
    let vms = dataset.population(MachineKind::Vm, None) as f64;
    let random = (pm * pms + vm * vms) / (pms + vms).max(1.0);
    (random > 0.0).then(|| follow.probability / random)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn every_class_induces_follow_on_failures() {
        let ds = testutil::dataset();
        let per_class = follow_on_by_class(ds, WEEK, ClassSource::Truth);
        for class in FailureClass::CLASSIFIED {
            let f = per_class[class.index()].expect("triggers exist");
            assert!(f.triggers > 10, "{class}: {} triggers", f.triggers);
            // Markedly above the ~0.004 random weekly probability.
            assert!(
                f.probability > 0.05,
                "{class}: follow-on probability {}",
                f.probability
            );
            assert!((0.0..=1.0).contains(&f.cross_class_share));
        }
    }

    #[test]
    fn follow_on_ratios_are_large_for_all_classes() {
        let ds = testutil::dataset();
        for class in FailureClass::CLASSIFIED {
            let ratio = follow_on_ratio(ds, class, ClassSource::Truth).expect("data");
            // [5]-style finding: follow-on intensity is orders above random.
            assert!(ratio > 10.0, "{class}: ratio {ratio}");
        }
    }

    #[test]
    fn follow_on_failures_usually_change_class() {
        // Recurrence draws a fresh class, so most follow-ons differ from
        // their trigger — the "follow-on failure of any kind" phenomenon.
        let ds = testutil::dataset();
        let per_class = follow_on_by_class(ds, WEEK, ClassSource::Truth);
        let power = per_class[FailureClass::Power.index()].expect("power triggers");
        assert!(
            power.cross_class_share > 0.5,
            "power cross-class share {}",
            power.cross_class_share
        );
    }

    #[test]
    fn longer_windows_capture_more_follow_ons() {
        let ds = testutil::dataset();
        let day = follow_on_by_class(ds, DAY, ClassSource::Truth);
        let month = follow_on_by_class(ds, MONTH, ClassSource::Truth);
        for class in FailureClass::CLASSIFIED {
            if let (Some(d), Some(m)) = (day[class.index()], month[class.index()]) {
                assert!(m.probability >= d.probability, "{class}");
            }
        }
    }
}
