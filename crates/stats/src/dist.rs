//! Continuous probability distributions.
//!
//! The paper fits inter-failure and repair times with Gamma, Weibull and
//! Log-normal distributions — "well known for describing the high variability
//! due to tails". Those three, plus Exponential (the memorylessness baseline
//! that failures famously do *not* follow), Uniform and Pareto, are
//! implemented here with sampling, densities, CDFs and moments.

use crate::rng::StreamRng;
use crate::special::{ln_gamma, reg_lower_gamma, std_normal_cdf};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A continuous distribution over (a subset of) the reals.
///
/// This trait is object-safe so analyses can carry `Box<dyn ContinuousDist>`
/// for fitted models of different families.
pub trait ContinuousDist: fmt::Debug {
    /// Draws one sample.
    fn sample(&self, rng: &mut StreamRng) -> f64;

    /// Probability density at `x` (0 outside the support).
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// Log-density at `x` (−∞ outside the support).
    fn ln_pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Family name for reports ("Gamma", "Weibull", ...).
    fn family(&self) -> &'static str;
}

fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(StatsError::InvalidParameter { name, value })
    }
}

/// Exponential distribution with rate λ (mean 1/λ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `rate > 0`.
    pub fn new(rate: f64) -> Result<Self> {
        Ok(Self {
            rate: check_positive("rate", rate)?,
        })
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn sample(&self, rng: &mut StreamRng) -> f64 {
        -(1.0 - rng.uniform()).ln() / self.rate
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn family(&self) -> &'static str {
        "Exponential"
    }
}

/// Gamma distribution with shape k and scale θ (mean kθ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `shape` and scale `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both are positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Self {
            shape: check_positive("shape", shape)?,
            scale: check_positive("scale", scale)?,
        })
    }

    /// The shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter θ.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Gamma {
    fn sample(&self, rng: &mut StreamRng) -> f64 {
        // Marsaglia–Tsang squeeze method; boost shape < 1 via the
        // Γ(k) = Γ(k+1) · U^{1/k} identity.
        let (shape, boost) = if self.shape < 1.0 {
            let u = rng.uniform().max(f64::MIN_POSITIVE);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.uniform().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * boost * self.scale;
            }
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            f64::NEG_INFINITY
        } else {
            (self.shape - 1.0) * x.ln()
                - x / self.scale
                - ln_gamma(self.shape)
                - self.shape * self.scale.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.shape, x / self.scale)
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn family(&self) -> &'static str {
        "Gamma"
    }
}

/// Weibull distribution with shape k and scale λ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with shape `shape` and scale `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both are positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Self {
            shape: check_positive("shape", shape)?,
            scale: check_positive("scale", scale)?,
        })
    }

    /// The shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Weibull {
    fn sample(&self, rng: &mut StreamRng) -> f64 {
        // Inverse CDF.
        let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            f64::NEG_INFINITY
        } else {
            let z = x / self.scale;
            self.shape.ln() - self.scale.ln() + (self.shape - 1.0) * z.ln() - z.powf(self.shape)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.shape)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.shape)).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn family(&self) -> &'static str {
        "Weibull"
    }
}

/// Log-normal distribution: ln X ~ N(μ, σ²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-mean `mu` and log-std
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sigma > 0` and `mu`
    /// is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(Self {
            mu,
            sigma: check_positive("sigma", sigma)?,
        })
    }

    /// The log-mean μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The log-standard-deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for LogNormal {
    fn sample(&self, rng: &mut StreamRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            f64::NEG_INFINITY
        } else {
            let z = (x.ln() - self.mu) / self.sigma;
            -z * z / 2.0 - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn family(&self) -> &'static str {
        "LogNormal"
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(StatsError::InvalidParameter {
                name: "hi",
                value: hi,
            });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDist for Uniform {
    fn sample(&self, rng: &mut StreamRng) -> f64 {
        rng.uniform_in(self.lo, self.hi)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.lo || x >= self.hi {
            f64::NEG_INFINITY
        } else {
            -(self.hi - self.lo).ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        f64::midpoint(self.lo, self.hi)
    }

    fn variance(&self) -> f64 {
        (self.hi - self.lo).powi(2) / 12.0
    }

    fn family(&self) -> &'static str {
        "Uniform"
    }
}

/// Pareto (type I) distribution with minimum `xm` and tail index α.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with scale `xm` and shape `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both are positive.
    pub fn new(xm: f64, alpha: f64) -> Result<Self> {
        Ok(Self {
            xm: check_positive("xm", xm)?,
            alpha: check_positive("alpha", alpha)?,
        })
    }

    /// The minimum value xm.
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// The tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ContinuousDist for Pareto {
    fn sample(&self, rng: &mut StreamRng) -> f64 {
        let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        self.xm / u.powf(1.0 / self.alpha)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            f64::NEG_INFINITY
        } else {
            self.alpha.ln() + self.alpha * self.xm.ln() - (self.alpha + 1.0) * x.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }

    fn family(&self) -> &'static str {
        "Pareto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean_var(dist: &dyn ContinuousDist, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StreamRng::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    fn check_sampling_matches_moments(dist: &dyn ContinuousDist, tol: f64) {
        let (mean, var) = sample_mean_var(dist, 200_000, 99);
        assert!(
            (mean - dist.mean()).abs() / dist.mean().abs().max(1.0) < tol,
            "{}: sample mean {mean} vs {}",
            dist.family(),
            dist.mean()
        );
        assert!(
            (var - dist.variance()).abs() / dist.variance().max(1.0) < 3.0 * tol,
            "{}: sample var {var} vs {}",
            dist.family(),
            dist.variance()
        );
    }

    fn check_cdf_matches_sampling(dist: &dyn ContinuousDist, probe: f64) {
        let mut rng = StreamRng::new(123);
        let n = 100_000;
        let below = (0..n).filter(|_| dist.sample(&mut rng) <= probe).count();
        let empirical = below as f64 / n as f64;
        assert!(
            (empirical - dist.cdf(probe)).abs() < 0.01,
            "{}: cdf({probe}) = {} but empirical {}",
            dist.family(),
            dist.cdf(probe),
            empirical
        );
    }

    fn check_pdf_integrates_to_cdf(dist: &dyn ContinuousDist, lo: f64, hi: f64) {
        // Trapezoid integration of the pdf should reproduce cdf differences.
        let steps = 20_000;
        let h = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            let a = lo + i as f64 * h;
            let b = a + h;
            integral += 0.5 * (dist.pdf(a) + dist.pdf(b)) * h;
        }
        let expected = dist.cdf(hi) - dist.cdf(lo);
        assert!(
            (integral - expected).abs() < 1e-3,
            "{}: ∫pdf = {integral} vs ΔCDF = {expected}",
            dist.family()
        );
    }

    #[test]
    fn exponential_behaves() {
        let d = Exponential::new(0.5).unwrap();
        assert_eq!(d.rate(), 0.5);
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.variance(), 4.0);
        check_sampling_matches_moments(&d, 0.02);
        check_cdf_matches_sampling(&d, 1.0);
        check_pdf_integrates_to_cdf(&d, 0.0, 5.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn gamma_behaves() {
        let d = Gamma::new(2.5, 3.0).unwrap();
        assert_eq!(d.shape(), 2.5);
        assert_eq!(d.scale(), 3.0);
        assert!((d.mean() - 7.5).abs() < 1e-12);
        assert!((d.variance() - 22.5).abs() < 1e-12);
        check_sampling_matches_moments(&d, 0.02);
        check_cdf_matches_sampling(&d, 5.0);
        check_pdf_integrates_to_cdf(&d, 0.0, 30.0);
    }

    #[test]
    fn gamma_small_shape_sampling() {
        // Shape < 1 exercises the boost path.
        let d = Gamma::new(0.5, 2.0).unwrap();
        check_sampling_matches_moments(&d, 0.03);
        let mut rng = StreamRng::new(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn weibull_behaves() {
        let d = Weibull::new(1.5, 10.0).unwrap();
        assert_eq!(d.shape(), 1.5);
        assert_eq!(d.scale(), 10.0);
        // Mean = λ Γ(1 + 1/k) = 10 · Γ(5/3) ≈ 9.0275
        assert!((d.mean() - 9.0274529296).abs() < 1e-6);
        check_sampling_matches_moments(&d, 0.02);
        check_cdf_matches_sampling(&d, 8.0);
        check_pdf_integrates_to_cdf(&d, 0.0, 50.0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 4.0).unwrap();
        let e = Exponential::new(0.25).unwrap();
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_behaves() {
        let d = LogNormal::new(1.0, 0.8).unwrap();
        assert_eq!(d.mu(), 1.0);
        assert_eq!(d.sigma(), 0.8);
        check_sampling_matches_moments(&d, 0.03);
        check_cdf_matches_sampling(&d, 3.0);
        check_pdf_integrates_to_cdf(&d, 1e-9, 60.0);
        // Median = e^μ.
        assert!((d.cdf(1.0f64.exp()) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn uniform_behaves() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(d.lo(), 2.0);
        assert_eq!(d.hi(), 6.0);
        assert_eq!(d.mean(), 4.0);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
        check_sampling_matches_moments(&d, 0.01);
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(7.0), 1.0);
        assert_eq!(d.cdf(4.0), 0.5);
        assert_eq!(d.pdf(1.0), 0.0);
        assert!((d.pdf(3.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pareto_behaves() {
        let d = Pareto::new(1.0, 3.0).unwrap();
        assert_eq!(d.xm(), 1.0);
        assert_eq!(d.alpha(), 3.0);
        assert!((d.mean() - 1.5).abs() < 1e-12);
        check_sampling_matches_moments(&d, 0.05);
        check_cdf_matches_sampling(&d, 2.0);
        assert_eq!(d.cdf(0.5), 0.0);
        // Infinite moments for heavy tails.
        assert!(Pareto::new(1.0, 0.9).unwrap().mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).unwrap().variance().is_infinite());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, f64::NAN).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(Uniform::new(3.0, 3.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }

    #[test]
    fn cdfs_are_monotone() {
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Exponential::new(1.0).unwrap()),
            Box::new(Gamma::new(2.0, 1.5).unwrap()),
            Box::new(Weibull::new(0.8, 2.0).unwrap()),
            Box::new(LogNormal::new(0.0, 1.0).unwrap()),
            Box::new(Pareto::new(0.5, 2.0).unwrap()),
        ];
        for d in &dists {
            let mut prev = -1.0;
            for i in 0..500 {
                let x = i as f64 * 0.05;
                let c = d.cdf(x);
                assert!(c >= prev - 1e-12, "{} cdf not monotone", d.family());
                assert!((0.0..=1.0).contains(&c));
                prev = c;
            }
        }
    }
}
