//! Correlation coefficients.
//!
//! The paper reasons about positive/negative correlation between failure
//! rates and resource attributes; Pearson (linear) and Spearman (rank)
//! coefficients make those statements quantitative.

use crate::{Result, StatsError};

fn validate(what: &'static str, xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            what,
            needed: 2,
            got: xs.len().min(ys.len()),
        });
    }
    for &v in xs.iter().chain(ys) {
        if !v.is_finite() {
            return Err(StatsError::InvalidSample { what, value: v });
        }
    }
    Ok(())
}

/// Pearson product-moment correlation of two equal-length samples.
///
/// # Errors
///
/// Returns an error for mismatched/short inputs, non-finite values or zero
/// variance in either sample.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    validate("pearson", xs, ys)?;
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InvalidSample {
            what: "pearson",
            value: 0.0,
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    validate("spearman", xs, ys)?;
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Sample autocorrelation function at lags `0..=max_lag`.
///
/// Uses the standard biased estimator (normalizing by `n`), which keeps the
/// sequence positive semi-definite. `acf[0]` is always 1.
///
/// # Errors
///
/// Returns an error when the series is shorter than `max_lag + 2`, contains
/// non-finite values, or has zero variance.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if series.len() < max_lag + 2 {
        return Err(StatsError::NotEnoughData {
            what: "autocorrelation",
            needed: max_lag + 2,
            got: series.len(),
        });
    }
    for &v in series {
        if !v.is_finite() {
            return Err(StatsError::InvalidSample {
                what: "autocorrelation",
                value: v,
            });
        }
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var: f64 = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if var == 0.0 {
        return Err(StatsError::InvalidSample {
            what: "autocorrelation",
            value: 0.0,
        });
    }
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 = series[lag..]
            .iter()
            .zip(series)
            .map(|(&a, &b)| (a - mean) * (b - mean))
            .sum::<f64>()
            / n;
        acf.push(cov / var);
    }
    Ok(acf)
}

/// Ljung–Box Q statistic over lags `1..=max_lag`; larger values indicate
/// stronger serial correlation. Under the white-noise null, Q is
/// approximately χ²(max_lag); a common rejection threshold at 5% for
/// `max_lag = 7` is ≈ 14.1.
///
/// # Errors
///
/// Same conditions as [`autocorrelation`].
pub fn ljung_box(series: &[f64], max_lag: usize) -> Result<f64> {
    let acf = autocorrelation(series, max_lag)?;
    let n = series.len() as f64;
    Ok(n * (n + 2.0)
        * acf[1..]
            .iter()
            .enumerate()
            .map(|(i, &r)| r * r / (n - (i + 1) as f64))
            .sum::<f64>())
}

/// Mid-ranks of a sample (ties receive the average of their rank range).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    // Unstable is fine: exact ties land in the same rank group and are
    // averaged, so the permutation within a tie group cannot leak out.
    idx.sort_unstable_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 (1-based), averaged over the tie group.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        // Hand-computed: cov = 1.5·... compute directly.
        let r = pearson(&xs, &ys).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for a convex curve.
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn acf_of_white_noise_is_near_zero() {
        use crate::rng::StreamRng;
        let mut rng = StreamRng::new(3);
        let series: Vec<f64> = (0..2000).map(|_| rng.standard_normal()).collect();
        let acf = autocorrelation(&series, 10).unwrap();
        assert_eq!(acf[0], 1.0);
        for &r in &acf[1..] {
            assert!(r.abs() < 0.08, "white-noise acf {r}");
        }
        // Ljung-Box stays below the χ²(10) 5% threshold (~18.3) most often;
        // allow margin.
        assert!(ljung_box(&series, 10).unwrap() < 25.0);
    }

    #[test]
    fn acf_detects_persistence() {
        // AR(1)-like series: x[t] = 0.8 x[t-1] + noise.
        use crate::rng::StreamRng;
        let mut rng = StreamRng::new(4);
        let mut series = vec![0.0f64];
        for _ in 1..2000 {
            let prev = *series.last().expect("non-empty");
            series.push(0.8 * prev + rng.standard_normal());
        }
        let acf = autocorrelation(&series, 5).unwrap();
        assert!(acf[1] > 0.7, "lag-1 acf {}", acf[1]);
        assert!(acf[2] > acf[3], "acf should decay");
        assert!(ljung_box(&series, 7).unwrap() > 100.0);
    }

    #[test]
    fn acf_rejects_bad_input() {
        assert!(autocorrelation(&[1.0, 2.0], 5).is_err());
        assert!(autocorrelation(&[1.0; 50], 5).is_err()); // zero variance
        assert!(autocorrelation(&[1.0, f64::NAN, 2.0, 3.0], 1).is_err());
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(pearson(&[1.0], &[2.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_err());
        assert!(pearson(&[1.0, f64::NAN], &[2.0, 3.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_err()); // zero variance
        assert!(spearman(&[], &[]).is_err());
    }
}
