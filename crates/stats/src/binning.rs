//! Attribute binning.
//!
//! The rate-vs-attribute figures (Figs. 7–10) group machines by ranges of a
//! capacity or usage attribute and then compute the weekly failure rate per
//! group. [`Bins`] defines the grouping; [`BinSeries`] accumulates per-bin
//! samples and summarizes them.

use crate::empirical::Summary;
use serde::{Deserialize, Serialize};

/// A partition of an attribute axis into labelled bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bins {
    /// Bin edges; bin `i` covers `[edges[i], edges[i+1])`. The last bin is
    /// closed on the right when `closed_last` is set.
    edges: Vec<f64>,
    labels: Vec<String>,
    closed_last: bool,
}

impl Bins {
    /// Creates bins from explicit edges. Bin `i` covers
    /// `[edges[i], edges[i+1])`; the last bin also includes its right edge.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 edges are given or edges are not strictly
    /// increasing.
    pub fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1], "edges must strictly increase");
        }
        let labels = edges
            .windows(2)
            .map(|pair| format!("{}-{}", trim_float(pair[0]), trim_float(pair[1])))
            .collect();
        Self {
            edges,
            labels,
            closed_last: true,
        }
    }

    /// Bins from explicit finite edges whose last bin is right-unbounded:
    /// bin `i` covers `[edges[i], edges[i+1])` and the final bin covers
    /// `[edges.last(), ∞)`, so every finite non-NaN value at or above the
    /// first edge maps to a bin. Generated labels end in `"{last}+"`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 edges are given, edges are not strictly
    /// increasing, or any edge is non-finite.
    pub fn open_last(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1], "edges must strictly increase");
        }
        assert!(
            edges.iter().all(|e| e.is_finite()),
            "open_last edges must be finite"
        );
        let mut labels: Vec<String> = edges
            .windows(2)
            .map(|pair| format!("{}-{}", trim_float(pair[0]), trim_float(pair[1])))
            .collect();
        labels.push(format!("{}+", trim_float(edges[edges.len() - 1])));
        let mut edges = edges;
        edges.push(f64::INFINITY);
        Self {
            edges,
            labels,
            closed_last: false,
        }
    }

    /// `n` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one bin");
        assert!(lo < hi, "range must be non-empty");
        let edges = (0..=n)
            .map(|i| lo + (hi - lo) * i as f64 / n as f64)
            .collect();
        Self::from_edges(edges)
    }

    /// Power-of-two bins: edges at `2^lo_exp, 2^(lo_exp+1), ..., 2^hi_exp`.
    ///
    /// # Panics
    ///
    /// Panics if `lo_exp >= hi_exp`.
    pub fn log2(lo_exp: i32, hi_exp: i32) -> Self {
        assert!(lo_exp < hi_exp, "need at least one octave");
        let edges = (lo_exp..=hi_exp).map(|e| 2f64.powi(e)).collect();
        Self::from_edges(edges)
    }

    /// Discrete bins anchored at representative values: a sample maps to the
    /// largest representative ≤ its value. Labels are the representatives
    /// themselves ("1", "2", "4", ...), matching the paper's x-axes for CPU
    /// counts and disk counts.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 1 representative is given or they are not
    /// strictly increasing.
    pub fn discrete(representatives: &[f64]) -> Self {
        assert!(!representatives.is_empty(), "need at least one value");
        for pair in representatives.windows(2) {
            assert!(pair[0] < pair[1], "representatives must strictly increase");
        }
        let mut edges: Vec<f64> = representatives.to_vec();
        edges.push(f64::INFINITY);
        let labels = representatives.iter().map(|&v| trim_float(v)).collect();
        Self {
            edges,
            labels,
            closed_last: false,
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no bins (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// True when the top bin is right-unbounded ([`Bins::open_last`] or
    /// [`Bins::discrete`]): no finite non-NaN value ≥ the first edge maps
    /// to `None`.
    pub fn is_open_ended(&self) -> bool {
        self.edges[self.edges.len() - 1] == f64::INFINITY
    }

    /// The bin index of `x`, or `None` if out of range.
    pub fn index_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.edges[0] {
            return None;
        }
        let last = self.edges[self.edges.len() - 1];
        if x > last || (x == last && !self.closed_last) {
            return None;
        }
        if x == last {
            return Some(self.len() - 1);
        }
        // partition_point: first edge > x; minus one gives the bin.
        Some(self.edges.partition_point(|&e| e <= x) - 1)
    }

    /// Label of bin `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// All labels in order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Replaces the generated labels (e.g. `"≤4GB"`).
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the bin count.
    #[must_use]
    pub fn with_labels(mut self, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.len(), "label count must match bin count");
        self.labels = labels;
        self
    }
}

fn trim_float(v: f64) -> String {
    if v.is_infinite() {
        return "inf".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Per-bin sample accumulator: push `(attribute, value)` pairs, read per-bin
/// summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinSeries {
    bins: Bins,
    values: Vec<Vec<f64>>,
    dropped: usize,
}

impl BinSeries {
    /// Creates an accumulator over `bins`.
    pub fn new(bins: Bins) -> Self {
        let values = vec![Vec::new(); bins.len()];
        Self {
            bins,
            values,
            dropped: 0,
        }
    }

    /// Adds a `(attribute, value)` observation; out-of-range attributes are
    /// counted as dropped.
    pub fn push(&mut self, attribute: f64, value: f64) {
        match self.bins.index_of(attribute) {
            Some(i) => self.values[i].push(value),
            None => self.dropped += 1,
        }
    }

    /// The bin definition.
    pub fn bins(&self) -> &Bins {
        &self.bins
    }

    /// Raw values accumulated in bin `i`.
    pub fn values(&self, i: usize) -> &[f64] {
        &self.values[i]
    }

    /// Number of observations whose attribute fell outside all bins.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Per-bin summaries (`None` for empty bins), in bin order.
    pub fn summaries(&self) -> Vec<Option<Summary>> {
        self.values.iter().map(|v| Summary::of(v)).collect()
    }

    /// `(label, summary)` pairs for non-empty bins.
    pub fn labelled_summaries(&self) -> Vec<(String, Summary)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| Summary::of(v).map(|s| (self.bins.label(i).to_string(), s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_maps_correctly() {
        let b = Bins::from_edges(vec![0.0, 10.0, 20.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.index_of(-0.1), None);
        assert_eq!(b.index_of(0.0), Some(0));
        assert_eq!(b.index_of(9.99), Some(0));
        assert_eq!(b.index_of(10.0), Some(1));
        assert_eq!(b.index_of(20.0), Some(1)); // last bin closed
        assert_eq!(b.index_of(20.01), None);
        assert_eq!(b.index_of(f64::NAN), None);
        assert_eq!(b.label(0), "0-10");
    }

    #[test]
    fn linear_bins() {
        let b = Bins::linear(0.0, 100.0, 10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.index_of(55.0), Some(5));
        assert_eq!(b.index_of(100.0), Some(9));
    }

    #[test]
    fn log2_bins() {
        let b = Bins::log2(0, 3); // [1,2), [2,4), [4,8]
        assert_eq!(b.len(), 3);
        assert_eq!(b.index_of(1.0), Some(0));
        assert_eq!(b.index_of(3.0), Some(1));
        assert_eq!(b.index_of(8.0), Some(2));
        assert_eq!(b.index_of(0.5), None);
        assert_eq!(b.label(2), "4-8");
    }

    #[test]
    fn discrete_bins() {
        let b = Bins::discrete(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.index_of(1.0), Some(0));
        assert_eq!(b.index_of(2.0), Some(1));
        assert_eq!(b.index_of(3.0), Some(1));
        assert_eq!(b.index_of(4.0), Some(2));
        assert_eq!(b.index_of(100.0), Some(3)); // open-ended top
        assert_eq!(b.index_of(0.5), None);
        assert_eq!(b.label(1), "2");
    }

    #[test]
    fn open_last_bins() {
        let b = Bins::open_last(vec![0.0, 1.0, 2.0, 4.0, 8.0]);
        assert_eq!(b.len(), 5);
        assert!(b.is_open_ended());
        assert_eq!(b.index_of(-0.1), None);
        assert_eq!(b.index_of(0.0), Some(0));
        assert_eq!(b.index_of(7.99), Some(3));
        assert_eq!(b.index_of(8.0), Some(4));
        assert_eq!(b.index_of(64.0), Some(4));
        assert_eq!(b.index_of(1e300), Some(4)); // no silent top-end drop
        assert_eq!(b.index_of(f64::NAN), None);
        assert_eq!(b.label(3), "4-8");
        assert_eq!(b.label(4), "8+");
        assert!(!Bins::from_edges(vec![0.0, 1.0]).is_open_ended());
        assert!(Bins::discrete(&[1.0, 2.0]).is_open_ended());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn open_last_rejects_infinite_edges() {
        let _ = Bins::open_last(vec![0.0, f64::INFINITY]);
    }

    #[test]
    fn custom_labels() {
        let b = Bins::linear(0.0, 2.0, 2).with_labels(vec!["low".into(), "high".into()]);
        assert_eq!(b.labels(), &["low".to_string(), "high".to_string()]);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn wrong_label_count_rejected() {
        let _ = Bins::linear(0.0, 2.0, 2).with_labels(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_edges_rejected() {
        let _ = Bins::from_edges(vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn bin_series_accumulates_and_summarizes() {
        let mut s = BinSeries::new(Bins::linear(0.0, 10.0, 2));
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        s.push(7.0, 5.0);
        s.push(100.0, 1.0); // dropped
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.values(0), &[10.0, 20.0]);
        let sums = s.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].unwrap().mean, 15.0);
        assert_eq!(sums[1].unwrap().mean, 5.0);
        let labelled = s.labelled_summaries();
        assert_eq!(labelled.len(), 2);
        assert_eq!(labelled[0].0, "0-5");
        assert_eq!(s.bins().len(), 2);
    }

    #[test]
    fn empty_bins_summarize_to_none() {
        let s = BinSeries::new(Bins::linear(0.0, 1.0, 3));
        assert!(s.summaries().iter().all(Option::is_none));
        assert!(s.labelled_summaries().is_empty());
    }
}
