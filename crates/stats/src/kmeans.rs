//! K-means clustering (k-means++ initialization, Lloyd iterations,
//! best-of-restarts), used by the ticket-classification pipeline.

use crate::rng::StreamRng;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Independent restarts; the lowest-inertia run wins.
    pub restarts: usize,
    /// Convergence threshold on relative inertia improvement.
    pub tol: f64,
}

impl KMeansConfig {
    /// A reasonable default for `k` clusters: 50 iterations, 4 restarts.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 50,
            restarts: 4,
            tol: 1e-6,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f32>>,
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits k-means to `points` (all of equal dimension).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] if there are fewer points than
    /// clusters, and [`StatsError::InvalidParameter`] if `k == 0`.
    pub fn fit(points: &[Vec<f32>], config: KMeansConfig, rng: &mut StreamRng) -> Result<Self> {
        if config.k == 0 {
            return Err(StatsError::InvalidParameter {
                name: "k",
                value: 0.0,
            });
        }
        if points.len() < config.k {
            return Err(StatsError::NotEnoughData {
                what: "k-means",
                needed: config.k,
                got: points.len(),
            });
        }
        let mut best: Option<KMeans> = None;
        for _ in 0..config.restarts.max(1) {
            let run = Self::fit_once(points, config, rng);
            if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
                best = Some(run);
            }
        }
        Ok(best.expect("at least one restart ran"))
    }

    fn fit_once(points: &[Vec<f32>], config: KMeansConfig, rng: &mut StreamRng) -> KMeans {
        let mut centroids = kmeans_plus_plus(points, config.k, rng);
        let mut assignments = vec![0usize; points.len()];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;
        for iter in 0..config.max_iter {
            iterations = iter + 1;
            // Assignment step. Each point's nearest-centroid search is pure,
            // so this parallelizes with bit-identical results; the inertia
            // sum is folded in point order to keep float addition exact.
            let nearest_per_point = dcfail_par::par_map(points, |_, p| nearest(&centroids, p));
            let mut new_inertia = 0.0;
            for (i, &(c, d2)) in nearest_per_point.iter().enumerate() {
                assignments[i] = c;
                new_inertia += d2 as f64;
            }
            // Update step.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0f64; dim]; config.k];
            let mut counts = vec![0usize; config.k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(p) {
                    *s += x as f64;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (cc, &s) in c.iter_mut().zip(sum) {
                        *cc = (s / count as f64) as f32;
                    }
                } else {
                    // Re-seed an empty cluster at a random point.
                    c.clone_from(&points[rng.below(points.len())]);
                }
            }
            let improved = inertia.is_infinite()
                || (inertia - new_inertia) > config.tol * inertia.abs().max(1.0);
            inertia = new_inertia;
            if !improved {
                break;
            }
        }
        KMeans {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Per-point cluster assignments, parallel to the training input.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final within-cluster sum of squared distances.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations performed in the winning restart.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Predicts the cluster of a new point.
    pub fn predict(&self, point: &[f32]) -> usize {
        nearest(&self.centroids, point).0
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

fn nearest(centroids: &[Vec<f32>], p: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(c, p);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// K-means++ seeding: first centroid uniform, subsequent ones D²-weighted.
fn kmeans_plus_plus(points: &[Vec<f32>], k: usize, rng: &mut StreamRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.below(points.len())].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| sq_dist(p, &centroids[0]) as f64)
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            points[rng.below(points.len())].clone()
        } else {
            let mut x = rng.uniform() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                x -= d;
                if x < 0.0 {
                    chosen = i;
                    break;
                }
            }
            points[chosen].clone()
        };
        for (d, p) in d2.iter_mut().zip(points) {
            *d = d.min(sq_dist(p, &next) as f64);
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        // Three well-separated 2-D blobs, 30 points each.
        let mut rng = StreamRng::new(10);
        let centers = [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)];
        let mut pts = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..30 {
                pts.push(vec![
                    cx + rng.standard_normal() as f32 * 0.5,
                    cy + rng.standard_normal() as f32 * 0.5,
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs();
        let mut rng = StreamRng::new(1);
        let km = KMeans::fit(&pts, KMeansConfig::new(3), &mut rng).unwrap();
        assert_eq!(km.k(), 3);
        assert_eq!(km.assignments().len(), 90);
        // Each blob should map to exactly one cluster.
        for blob in 0..3 {
            let slice = &km.assignments()[blob * 30..(blob + 1) * 30];
            assert!(slice.iter().all(|&a| a == slice[0]), "blob {blob} split");
        }
        // And the three clusters are distinct.
        let mut firsts: Vec<usize> = (0..3).map(|b| km.assignments()[b * 30]).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 3);
        assert!(km.inertia() < 150.0, "inertia {}", km.inertia());
        assert!(km.iterations() >= 1);
    }

    #[test]
    fn predict_matches_assignment() {
        let pts = blobs();
        let mut rng = StreamRng::new(2);
        let km = KMeans::fit(&pts, KMeansConfig::new(3), &mut rng).unwrap();
        for (p, &a) in pts.iter().zip(km.assignments()) {
            assert_eq!(km.predict(p), a);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let km1 = KMeans::fit(&pts, KMeansConfig::new(3), &mut StreamRng::new(3)).unwrap();
        let km2 = KMeans::fit(&pts, KMeansConfig::new(3), &mut StreamRng::new(3)).unwrap();
        assert_eq!(km1, km2);
    }

    #[test]
    fn assignment_minimizes_distance_to_centroids() {
        let pts = blobs();
        let mut rng = StreamRng::new(4);
        let km = KMeans::fit(&pts, KMeansConfig::new(3), &mut rng).unwrap();
        for (p, &a) in pts.iter().zip(km.assignments()) {
            let assigned = sq_dist(p, &km.centroids()[a]);
            for c in km.centroids() {
                assert!(assigned <= sq_dist(p, c) + 1e-4);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_fit() {
        let pts = blobs();
        dcfail_par::set_thread_override(Some(1));
        let seq = KMeans::fit(&pts, KMeansConfig::new(3), &mut StreamRng::new(8)).unwrap();
        dcfail_par::set_thread_override(Some(8));
        let par = KMeans::fit(&pts, KMeansConfig::new(3), &mut StreamRng::new(8)).unwrap();
        dcfail_par::set_thread_override(None);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_k_equal_points() {
        let pts = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let mut rng = StreamRng::new(5);
        let km = KMeans::fit(&pts, KMeansConfig::new(2), &mut rng).unwrap();
        assert_eq!(km.k(), 2);
        assert!(km.inertia() < 1e-9);
    }

    #[test]
    fn duplicate_points_dont_crash() {
        let pts = vec![vec![1.0f32, 1.0]; 10];
        let mut rng = StreamRng::new(6);
        let km = KMeans::fit(&pts, KMeansConfig::new(3), &mut rng).unwrap();
        assert!(km.inertia() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        let pts = vec![vec![0.0f32]];
        let mut rng = StreamRng::new(7);
        assert!(KMeans::fit(&pts, KMeansConfig::new(2), &mut rng).is_err());
        assert!(KMeans::fit(&pts, KMeansConfig::new(0), &mut rng).is_err());
    }
}
