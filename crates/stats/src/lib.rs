//! # dcfail-stats
//!
//! Statistics substrate for the dcfail toolkit.
//!
//! The paper's methodology needs a specific statistical toolbox which this
//! crate implements from scratch (no external math dependencies):
//!
//! * [`special`] — ln-gamma, digamma, trigamma, erf and the regularized
//!   incomplete gamma function.
//! * [`dist`] — the long-tailed families the paper fits (Gamma, Weibull,
//!   Log-normal) plus Exponential, Uniform and Pareto, each with sampling,
//!   pdf/cdf and moments.
//! * [`fit`] — maximum-likelihood estimation per family and log-likelihood /
//!   AIC model selection (the paper selects "according to log likelihood of
//!   fitting").
//! * [`empirical`] — ECDFs, quantiles, histograms and summary statistics.
//! * [`binning`] — attribute binning for the rate-vs-capacity/usage figures.
//! * [`gof`] — Kolmogorov–Smirnov goodness-of-fit.
//! * [`survival`] — Kaplan–Meier estimation with right-censoring (servers
//!   that fail once are censored, not ignorable).
//! * [`bootstrap`] — percentile-bootstrap confidence intervals.
//! * [`corr`] — Pearson and Spearman correlation.
//! * [`text`] / [`kmeans`] — TF-IDF vectorization and k-means++ clustering
//!   for the ticket-classification pipeline (87% accuracy in the paper).
//! * [`rng`] — deterministic, forkable random streams so every experiment is
//!   reproducible bit-for-bit.
//!
//! ```
//! use dcfail_stats::dist::{ContinuousDist, Gamma};
//! use dcfail_stats::fit::fit_gamma;
//! use dcfail_stats::rng::StreamRng;
//!
//! let mut rng = StreamRng::new(42).fork("example");
//! let gamma = Gamma::new(2.0, 3.0)?;
//! let xs: Vec<f64> = (0..2000).map(|_| gamma.sample(&mut rng)).collect();
//! let fitted = fit_gamma(&xs)?;
//! assert!((fitted.shape() - 2.0).abs() < 0.3);
//! # Ok::<(), dcfail_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod binning;
pub mod bootstrap;
pub mod corr;
pub mod dist;
pub mod empirical;
pub mod fit;
pub mod gof;
pub mod kmeans;
pub mod merge;
pub mod rng;
pub mod special;
pub mod survival;
pub mod text;

use std::fmt;

/// Errors produced by the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name, e.g. `"shape"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The input sample was empty or too small for the requested operation.
    NotEnoughData {
        /// What was being computed.
        what: &'static str,
        /// Number of observations required.
        needed: usize,
        /// Number of observations given.
        got: usize,
    },
    /// The input sample contained a value outside the distribution support.
    InvalidSample {
        /// What was being computed.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An iterative estimator failed to converge.
    NoConvergence {
        /// What was being estimated.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter { name, value } => {
                write!(f, "invalid {name} parameter: {value}")
            }
            StatsError::NotEnoughData { what, needed, got } => {
                write!(f, "{what} needs at least {needed} observations, got {got}")
            }
            StatsError::InvalidSample { what, value } => {
                write!(f, "{what} received out-of-support sample value {value}")
            }
            StatsError::NoConvergence { what } => {
                write!(f, "{what} did not converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = StatsError::InvalidParameter {
            name: "shape",
            value: -1.0,
        };
        assert_eq!(e.to_string(), "invalid shape parameter: -1");
        let e = StatsError::NotEnoughData {
            what: "gamma fit",
            needed: 2,
            got: 0,
        };
        assert_eq!(
            e.to_string(),
            "gamma fit needs at least 2 observations, got 0"
        );
        let e = StatsError::InvalidSample {
            what: "weibull fit",
            value: -3.0,
        };
        assert!(e.to_string().contains("out-of-support"));
        let e = StatsError::NoConvergence { what: "newton" };
        assert_eq!(e.to_string(), "newton did not converge");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<StatsError>();
    }
}
