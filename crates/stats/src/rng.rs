//! Deterministic, forkable random streams.
//!
//! Every stochastic component of the simulator draws from its own named
//! stream forked off a single root seed. Adding a new component therefore
//! never perturbs the draws of existing ones, and every experiment is
//! reproducible bit-for-bit from `(seed, stream name)`.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// A named, seedable random stream.
///
/// `StreamRng` wraps a [`SmallRng`] (xoshiro-based, fast, not
/// cryptographically secure — simulation only) and adds *forking*: deriving
/// an independent child stream from a string label.
#[derive(Debug, Clone)]
pub struct StreamRng {
    seed: u64,
    inner: SmallRng,
}

impl StreamRng {
    /// Creates the root stream for `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream named `label`.
    ///
    /// Forking is pure: it depends only on the parent seed and the label,
    /// never on how much the parent has been consumed.
    #[must_use]
    pub fn fork(&self, label: &str) -> StreamRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        StreamRng {
            seed: child_seed,
            inner: SmallRng::seed_from_u64(child_seed),
        }
    }

    /// Derives an independent child stream from an integer index, for
    /// per-entity streams (e.g. one per machine).
    #[must_use]
    pub fn fork_index(&self, label: &str, index: u64) -> StreamRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index));
        StreamRng {
            seed: child_seed,
            inner: SmallRng::seed_from_u64(child_seed),
        }
    }

    /// The seed identifying this stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Fills `out` with consecutive [`Self::uniform`] draws — the batched
    /// form of a per-element `uniform()` loop, producing the bit-identical
    /// draw sequence (hot per-machine stages draw a buffer at a time
    /// instead of one value per call site).
    pub fn uniform_fill(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.uniform();
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-free multiply-shift; bias is < 2^-53 for practical n.
        (self.uniform() * n as f64) as usize % n
    }

    /// Draws an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted() needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indexes from `[0, n)` (floyd's algorithm order is
    /// not needed; simple shuffle prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indexes(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StreamRng::new(7);
        let mut b = StreamRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut parent1 = StreamRng::new(7);
        let parent2 = StreamRng::new(7);
        let _ = parent1.next_u64(); // consume parent1
        let mut c1 = parent1.fork("child");
        let mut c2 = parent2.fork("child");
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let root = StreamRng::new(7);
        let mut a = root.fork("a");
        let mut b = root.fork("b");
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn fork_index_distinguishes_entities() {
        let root = StreamRng::new(7);
        let mut a = root.fork_index("machine", 1);
        let mut b = root.fork_index("machine", 2);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = root.fork_index("machine", 1);
        assert_eq!(
            StreamRng::next_u64(&mut a2),
            root.fork_index("machine", 1).next_u64()
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = StreamRng::new(3);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StreamRng::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn bernoulli_respects_probability() {
        let mut rng = StreamRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = StreamRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let i = rng.below(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = StreamRng::new(5);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[rng.weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f0 - 1.0 / 6.0).abs() < 0.01);
        assert!((f2 - 0.5).abs() < 0.01);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StreamRng::new(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01);
        assert!((var - 1.0).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StreamRng::new(9);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indexes_are_distinct() {
        let mut rng = StreamRng::new(9);
        let idx = rng.sample_indexes(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn uniform_fill_matches_single_draws() {
        let mut batched = StreamRng::new(42).fork("x");
        let mut single = StreamRng::new(42).fork("x");
        let mut buf = [0.0; 17];
        batched.uniform_fill(&mut buf);
        for &v in &buf {
            assert_eq!(v, single.uniform());
        }
        // The streams stay aligned after the batch.
        assert_eq!(batched.uniform(), single.uniform());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_rejected() {
        let mut rng = StreamRng::new(1);
        let _ = rng.sample_indexes(3, 4);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_rejected() {
        let mut rng = StreamRng::new(1);
        let _ = rng.below(0);
    }
}
