//! Goodness-of-fit tests.

use crate::dist::ContinuousDist;
use crate::{Result, StatsError};

/// Result of a Kolmogorov–Smirnov one-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic D = sup |F̂(x) − F(x)|.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsTest {
    /// True when the fit is *not* rejected at significance `alpha`.
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// One-sample Kolmogorov–Smirnov test of `data` against `dist`.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for an empty sample and
/// [`StatsError::InvalidSample`] if the data contains NaN.
pub fn ks_test(data: &[f64], dist: &dyn ContinuousDist) -> Result<KsTest> {
    if data.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "KS test",
            needed: 1,
            got: 0,
        });
    }
    if data.iter().any(|x| x.is_nan()) {
        return Err(StatsError::InvalidSample {
            what: "KS test",
            value: f64::NAN,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let n = sorted.len();
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = dist.cdf(x);
        let upper = (i as f64 + 1.0) / nf - cdf;
        let lower = cdf - i as f64 / nf;
        d = d.max(upper.max(lower));
    }
    let sqrt_n = nf.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n,
    })
}

/// Kolmogorov's Q function: Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Gamma, LogNormal};
    use crate::rng::StreamRng;

    #[test]
    fn ks_accepts_true_model() {
        let d = Gamma::new(2.0, 5.0).unwrap();
        let mut rng = StreamRng::new(1);
        let xs: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let test = ks_test(&xs, &d).unwrap();
        assert_eq!(test.n, 5000);
        assert!(test.statistic < 0.03, "D = {}", test.statistic);
        assert!(test.accepts(0.01), "p = {}", test.p_value);
    }

    #[test]
    fn ks_rejects_wrong_model() {
        let truth = LogNormal::new(0.0, 1.5).unwrap();
        let wrong = Exponential::new(0.5).unwrap();
        let mut rng = StreamRng::new(2);
        let xs: Vec<f64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
        let test = ks_test(&xs, &wrong).unwrap();
        assert!(!test.accepts(0.05), "p = {}", test.p_value);
        assert!(test.statistic > 0.1);
    }

    #[test]
    fn ks_rejects_bad_input() {
        let d = Exponential::new(1.0).unwrap();
        assert!(ks_test(&[], &d).is_err());
        assert!(ks_test(&[1.0, f64::NAN], &d).is_err());
    }

    #[test]
    fn kolmogorov_q_limits() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.2) > 0.99);
        assert!(kolmogorov_q(3.0) < 1e-6);
        // Known value: Q(1.0) ≈ 0.26999.
        assert!((kolmogorov_q(1.0) - 0.26999967).abs() < 1e-6);
    }
}
