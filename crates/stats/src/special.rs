//! Special mathematical functions.
//!
//! Self-contained implementations of the functions the fitting code needs:
//! ln-gamma (Lanczos), digamma and trigamma (recurrence + asymptotic series),
//! erf/erfc (Abramowitz–Stegun 7.1.26-grade rational approximation) and the
//! regularized lower incomplete gamma function (series + continued fraction).
//!
//! Accuracies are validated in the unit tests against high-precision
//! reference values.

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0` (negative arguments are not needed by this crate).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x).
///
/// Uses the recurrence ψ(x) = ψ(x+1) − 1/x to push the argument above 6,
/// then the asymptotic expansion. Accurate to ~1e-12 for x > 0.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n} / (2n x^{2n})
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0
                        - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))))
}

/// Trigamma function ψ′(x).
///
/// Same strategy as [`digamma`]: recurrence then asymptotic series.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn trigamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut result = 0.0;
    while x < 6.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv
            * (1.0
                + inv
                    * (0.5
                        + inv
                            * (1.0 / 6.0
                                - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// Error function erf(x), accurate to ~1.2e-7 (sufficient for CDF plots).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function erfc(x).
pub fn erfc(x: f64) -> f64 {
    // Numerical Recipes' rational Chebyshev approximation, |err| ≤ 1.2e-7.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x) / Γ(a).
///
/// Series expansion for `x < a + 1`, continued fraction otherwise; the
/// classic `gammp` split. Accurate to ~1e-12.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_fraction(a, x)
    }
}

/// Series representation of P(a, x), valid for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) = 1 − P(a, x), for x ≥ a + 1.
fn gamma_cont_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(3.0), std::f64::consts::LN_2, 1e-12);
        close(ln_gamma(4.0), 6.0f64.ln(), 1e-12);
        // Γ(0.5) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(10) = 362880
        close(ln_gamma(10.0), 362880.0f64.ln(), 1e-10);
        // Large argument (Stirling regime).
        close(ln_gamma(100.0), 359.1342053695754, 1e-8);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        close(digamma(1.0), -0.5772156649015329, 1e-11);
        // ψ(2) = 1 − γ
        close(digamma(2.0), 1.0 - 0.5772156649015329, 1e-11);
        // ψ(0.5) = −γ − 2 ln 2
        close(
            digamma(0.5),
            -0.5772156649015329 - 2.0 * std::f64::consts::LN_2,
            1e-10,
        );
        close(digamma(10.0), 2.251752589066721, 1e-11);
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.3, 1.0, 2.5, 7.0, 20.0] {
            let h = 1e-6;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            close(digamma(x), numeric, 1e-6);
        }
    }

    #[test]
    fn trigamma_known_values() {
        // ψ'(1) = π²/6
        close(trigamma(1.0), std::f64::consts::PI.powi(2) / 6.0, 1e-9);
        // ψ'(0.5) = π²/2
        close(trigamma(0.5), std::f64::consts::PI.powi(2) / 2.0, 1e-9);
        close(trigamma(10.0), 0.10516633568168575, 1e-11);
    }

    #[test]
    fn trigamma_is_derivative_of_digamma() {
        for &x in &[0.7, 1.5, 4.0, 12.0] {
            let h = 1e-6;
            let numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
            close(trigamma(x), numeric, 1e-5);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-7);
        close(erf(1.0), 0.8427007929497149, 2e-7);
        close(erf(-1.0), -0.8427007929497149, 2e-7);
        close(erf(2.0), 0.9953222650189527, 2e-7);
        close(erfc(3.0), 2.209049699858544e-5, 1e-9);
    }

    #[test]
    fn std_normal_cdf_symmetry() {
        close(std_normal_cdf(0.0), 0.5, 1e-7);
        close(std_normal_cdf(1.96), 0.9750021048517795, 1e-6);
        close(std_normal_cdf(1.5) + std_normal_cdf(-1.5), 1.0, 1e-7);
    }

    #[test]
    fn reg_lower_gamma_known_values() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0; P(a, ∞) → 1
        close(reg_lower_gamma(2.5, 0.0), 0.0, 1e-15);
        close(reg_lower_gamma(2.5, 100.0), 1.0, 1e-12);
        // Reference: P(3, 2) (e.g. scipy gammainc(3, 2)).
        close(reg_lower_gamma(3.0, 2.0), 0.3233235838169365, 1e-12);
        // Reference: P(0.5, 0.5) = erf(1/sqrt(2))... via relation.
        close(reg_lower_gamma(0.5, 0.5), erf((0.5f64).sqrt()), 1e-7);
    }

    #[test]
    fn reg_lower_gamma_is_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = reg_lower_gamma(2.0, x);
            assert!(p >= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn reg_lower_gamma_rejects_bad_a() {
        let _ = reg_lower_gamma(0.0, 1.0);
    }
}
