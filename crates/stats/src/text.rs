//! Text vectorization for ticket classification.
//!
//! The paper applies "manual labeling and k-means clustering on both the
//! description and the resolution field of all tickets". This module
//! provides the feature side: a tokenizer, a document-frequency-pruned
//! vocabulary and a TF-IDF vectorizer producing L2-normalized dense vectors.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Splits text into lowercase alphanumeric tokens, dropping one-character
/// tokens (mostly punctuation debris and ids).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 1)
        .map(str::to_lowercase)
        .collect()
}

/// A vocabulary mapping tokens to dense feature indexes, with document
/// frequencies. Feature index `i` is the rank of the token in lexicographic
/// order, so the layout is a function of the corpus alone.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocabulary {
    tokens: Vec<String>,
    doc_freq: Vec<usize>,
    num_docs: usize,
}

impl Vocabulary {
    /// Builds a vocabulary from tokenized documents, keeping tokens that
    /// appear in at least `min_df` documents.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a [String]>, min_df: usize) -> Self {
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        let mut num_docs = 0;
        for doc in docs {
            num_docs += 1;
            let mut seen: Vec<&String> = doc.iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for token in seen {
                *df.entry(token.clone()).or_insert(0) += 1;
            }
        }
        let mut tokens = Vec::new();
        let mut doc_freq = Vec::new();
        // BTreeMap iterates in key order, so the kept tokens arrive sorted.
        for (token, count) in df {
            if count >= min_df.max(1) {
                tokens.push(token);
                doc_freq.push(count);
            }
        }
        Self {
            tokens,
            doc_freq,
            num_docs,
        }
    }

    /// Number of features (kept tokens).
    pub fn len(&self) -> usize {
        self.doc_freq.len()
    }

    /// True when no token was kept.
    pub fn is_empty(&self) -> bool {
        self.doc_freq.is_empty()
    }

    /// Feature index of `token`, if kept.
    pub fn index_of(&self, token: &str) -> Option<usize> {
        self.tokens.binary_search_by(|t| t.as_str().cmp(token)).ok()
    }

    /// Number of documents the vocabulary was built from.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency of feature `i`.
    pub fn doc_freq(&self, i: usize) -> usize {
        self.doc_freq[i]
    }
}

/// TF-IDF vectorizer with smoothed IDF and L2 normalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TfIdf {
    vocab: Vocabulary,
    idf: Vec<f32>,
}

impl TfIdf {
    /// Fits the vectorizer: builds the vocabulary (pruned at `min_df`) and
    /// the smoothed IDF weights `ln((1 + N) / (1 + df)) + 1`.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a [String]>, min_df: usize) -> Self {
        let vocab = Vocabulary::build(docs, min_df);
        let n = vocab.num_docs() as f32;
        let idf = (0..vocab.len())
            .map(|i| ((1.0 + n) / (1.0 + vocab.doc_freq(i) as f32)).ln() + 1.0)
            .collect();
        Self { vocab, idf }
    }

    /// The underlying vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.vocab.len()
    }

    /// Transforms a tokenized document into an L2-normalized TF-IDF vector.
    /// Unknown tokens are ignored; a document with no known tokens maps to
    /// the zero vector.
    pub fn transform(&self, doc: &[String]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.vocab.len()];
        for token in doc {
            if let Some(i) = self.vocab.index_of(token) {
                v[i] += 1.0;
            }
        }
        for (x, &w) in v.iter_mut().zip(&self.idf) {
            *x *= w;
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Transforms raw text (tokenizes first).
    pub fn transform_text(&self, text: &str) -> Vec<f32> {
        self.transform(&tokenize(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Server UNREACHABLE: ping-timeout (eth0)"),
            vec!["server", "unreachable", "ping", "timeout", "eth0"]
        );
        // Single characters dropped.
        assert_eq!(tokenize("a b cd"), vec!["cd"]);
        assert!(tokenize("").is_empty());
    }

    fn docs() -> Vec<Vec<String>> {
        vec![
            tokenize("disk failure replaced disk"),
            tokenize("network switch failure"),
            tokenize("disk full cleanup"),
        ]
    }

    #[test]
    fn vocabulary_counts_document_frequency() {
        let d = docs();
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v = Vocabulary::build(refs.iter().copied(), 1);
        assert_eq!(v.num_docs(), 3);
        let disk = v.index_of("disk").unwrap();
        assert_eq!(v.doc_freq(disk), 2); // duplicate within doc counts once
        assert!(v.index_of("switch").is_some());
        assert!(v.index_of("nonexistent").is_none());
        assert!(!v.is_empty());
    }

    #[test]
    fn min_df_prunes_rare_tokens() {
        let d = docs();
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v = Vocabulary::build(refs.iter().copied(), 2);
        assert!(v.index_of("disk").is_some()); // df = 2
        assert!(v.index_of("switch").is_none()); // df = 1
        assert!(v.index_of("failure").is_some()); // df = 2
    }

    #[test]
    fn tfidf_vectors_are_normalized() {
        let d = docs();
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let tfidf = TfIdf::fit(refs.iter().copied(), 1);
        assert!(tfidf.dim() > 0);
        for doc in &d {
            let v = tfidf.transform(doc);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rare_terms_weigh_more() {
        let d = docs();
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let tfidf = TfIdf::fit(refs.iter().copied(), 1);
        let v = tfidf.transform(&tokenize("disk switch"));
        let disk = tfidf.vocabulary().index_of("disk").unwrap();
        let switch = tfidf.vocabulary().index_of("switch").unwrap();
        assert!(v[switch] > v[disk], "rarer token should get higher weight");
    }

    #[test]
    fn unknown_document_is_zero_vector() {
        let d = docs();
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let tfidf = TfIdf::fit(refs.iter().copied(), 1);
        let v = tfidf.transform_text("completely unrelated words");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn vocabulary_is_deterministic() {
        let d = docs();
        let refs: Vec<&[String]> = d.iter().map(Vec::as_slice).collect();
        let v1 = Vocabulary::build(refs.iter().copied(), 1);
        let v2 = Vocabulary::build(refs.iter().copied(), 1);
        assert_eq!(v1, v2);
    }
}
