//! Mergeable streaming accumulators for out-of-core analysis.
//!
//! A [`Mergeable`] accumulator summarizes one shard of a dataset and can
//! absorb the accumulator of any other shard; the merged state is identical
//! no matter how the input was partitioned or in which order the parts were
//! absorbed. That contract — `absorb` is associative *and* commutative, and
//! `finalize` depends only on the merged state — is what lets
//! `dcfail-shard` compute the paper's figures one shard at a time while
//! staying bit-identical to the monolithic pipeline.
//!
//! Two families of accumulators live here:
//!
//! * **Exactly mergeable** — integer counters ([`Counter`], [`CountVec`],
//!   [`CountMatrix`], [`FixedHistogram`]) and the error-free float
//!   accumulator [`ExactSum`]. Their merged result equals the monolithic
//!   result bit-for-bit.
//! * **Reservoir-approximated** — [`KeyedSamples`], a bottom-k sample keyed
//!   by a deterministic priority. With a bound `>= n` it keeps everything
//!   and `finalize` restores the exact monolithic order (by key); with a
//!   smaller bound it is a deterministic uniform subsample.

use serde::{Deserialize, Serialize};

/// A shard summary that can absorb other shards' summaries.
///
/// Implementations must make `absorb` associative and commutative on the
/// accumulator state so that any partition of the input, merged in any
/// order, produces the same state. `identity()` is the neutral element:
/// absorbing it changes nothing, and an identity that absorbs one shard
/// equals that shard.
pub trait Mergeable: Sized {
    /// The finished statistic this accumulator produces.
    type Output;

    /// The neutral element: merging it into anything is a no-op.
    fn identity() -> Self;

    /// Folds another shard's accumulator into this one.
    fn absorb(&mut self, other: &Self);

    /// Consumes the merged state, producing the finished statistic.
    fn finalize(self) -> Self::Output;
}

// ---------------------------------------------------------------------------
// ExactSum
// ---------------------------------------------------------------------------

/// An error-free floating-point sum (Shewchuk's nonoverlapping expansion).
///
/// The accumulator state represents the *exact* real-number sum of every
/// value pushed so far as a sum of nonoverlapping doubles. Because the
/// representation is exact, grouping and order of addition cannot change it:
/// sharded sums match monolithic sums bit-for-bit after [`ExactSum::value`]
/// rounds the expansion once.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExactSum {
    /// Nonoverlapping components, ordered by increasing magnitude.
    components: Vec<f64>,
}

impl ExactSum {
    /// An empty (zero) sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value exactly.
    pub fn push(&mut self, value: f64) {
        let mut x = value;
        let mut out = 0usize;
        for i in 0..self.components.len() {
            let y = self.components[i];
            // Two-sum: hi + lo == x + y exactly.
            let hi = x + y;
            let y_virtual = hi - x;
            let x_virtual = hi - y_virtual;
            let lo = (x - x_virtual) + (y - y_virtual);
            if lo != 0.0 {
                self.components[out] = lo;
                out += 1;
            }
            x = hi;
        }
        self.components.truncate(out);
        if x != 0.0 || self.components.is_empty() {
            self.components.push(x);
        }
    }

    /// The correctly rounded value of the exact sum.
    ///
    /// Uses the `fsum` rounding pass over the partials (largest first, with
    /// a half-even correction from the first nonzero residual), so the
    /// result is the true sum rounded once — independent of push order.
    pub fn value(&self) -> f64 {
        let p = &self.components;
        let mut n = p.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = p[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = p[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Half-way case: adjust if the remaining partials push the sum
        // across the rounding boundary.
        if n > 0 && ((lo < 0.0 && p[n - 1] < 0.0) || (lo > 0.0 && p[n - 1] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

impl Mergeable for ExactSum {
    type Output = f64;

    fn identity() -> Self {
        Self::new()
    }

    fn absorb(&mut self, other: &Self) {
        for &c in &other.components {
            self.push(c);
        }
    }

    fn finalize(self) -> f64 {
        self.value()
    }
}

// ---------------------------------------------------------------------------
// Integer counters
// ---------------------------------------------------------------------------

/// A single event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Mergeable for Counter {
    type Output = u64;

    fn identity() -> Self {
        Self(0)
    }

    fn absorb(&mut self, other: &Self) {
        self.0 += other.0;
    }

    fn finalize(self) -> u64 {
        self.0
    }
}

/// A dense vector of counters (e.g. events per failure class).
///
/// The identity is the empty vector; the first non-empty absorb fixes the
/// length, and subsequent absorbs must match it.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CountVec {
    counts: Vec<u64>,
}

impl CountVec {
    /// A zeroed vector of `len` counters.
    pub fn zeros(len: usize) -> Self {
        Self {
            counts: vec![0; len],
        }
    }

    /// Increments counter `i` by `by`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add(&mut self, i: usize, by: u64) {
        self.counts[i] += by;
    }

    /// The counter values.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

impl Mergeable for CountVec {
    type Output = Vec<u64>;

    fn identity() -> Self {
        Self::default()
    }

    fn absorb(&mut self, other: &Self) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; other.counts.len()];
        }
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "CountVec dimensions must match"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    fn finalize(self) -> Vec<u64> {
        self.counts
    }
}

/// A dense `rows x cols` matrix of counters (e.g. events per bin and week).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CountMatrix {
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
}

impl CountMatrix {
    /// A zeroed `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            counts: vec![0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The count at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.counts[row * self.cols + col]
    }

    /// Increments `(row, col)` by `by`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn add(&mut self, row: usize, col: usize, by: u64) {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        self.counts[row * self.cols + col] += by;
    }

    /// Increments every cell of `row` by `by` — the bulk form of calling
    /// [`Self::add`] once per column.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn add_row(&mut self, row: usize, by: u64) {
        assert!(row < self.rows, "row out of range");
        for cell in &mut self.counts[row * self.cols..(row + 1) * self.cols] {
            *cell += by;
        }
    }
}

impl Mergeable for CountMatrix {
    type Output = CountMatrix;

    fn identity() -> Self {
        Self::default()
    }

    fn absorb(&mut self, other: &Self) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            *self = Self::zeros(other.rows, other.cols);
        }
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "CountMatrix dimensions must match"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    fn finalize(self) -> CountMatrix {
        self
    }
}

// ---------------------------------------------------------------------------
// Fixed-bin histogram
// ---------------------------------------------------------------------------

/// A histogram over fixed, pre-agreed bin edges.
///
/// Because the edges are part of the accumulator configuration (not derived
/// from the data), per-shard histograms merge exactly. Out-of-range values
/// are tracked in `below`/`above` so no observation is silently dropped.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FixedHistogram {
    /// Bin edges; bin `i` covers `[edges[i], edges[i+1])`.
    edges: Vec<f64>,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl FixedHistogram {
    /// A histogram over `edges` (ascending, at least two).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are given or they are not strictly
    /// increasing.
    pub fn with_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1], "edges must strictly increase");
        }
        let counts = vec![0; edges.len() - 1];
        Self {
            edges,
            counts,
            below: 0,
            above: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.edges.is_empty() {
            // An identity histogram has no binning configuration; treat
            // everything as out of range below so the count is not lost.
            self.below += 1;
            return;
        }
        if value < self.edges[0] || value.is_nan() {
            self.below += 1;
        } else if value >= self.edges[self.edges.len() - 1] {
            self.above += 1;
        } else {
            let bin = self.edges.partition_point(|&e| e <= value) - 1;
            self.counts[bin] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Observations below the first edge (or NaN).
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Observations at or above the last edge.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.counts.iter().sum::<u64>()
    }
}

impl Mergeable for FixedHistogram {
    type Output = FixedHistogram;

    fn identity() -> Self {
        Self::default()
    }

    fn absorb(&mut self, other: &Self) {
        if other.edges.is_empty() && other.below == 0 && other.above == 0 {
            return;
        }
        if self.edges.is_empty() && self.below == 0 && self.above == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(self.edges, other.edges, "histogram edges must match");
        self.below += other.below;
        self.above += other.above;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    fn finalize(self) -> FixedHistogram {
        self
    }
}

// ---------------------------------------------------------------------------
// Keyed samples / bounded reservoir
// ---------------------------------------------------------------------------

/// A deterministic bottom-k sample of keyed values.
///
/// Every observation carries a unique, totally ordered `key` (e.g. a global
/// event index) and a priority derived from it. The accumulator keeps the
/// `bound` observations with the smallest `(priority, key)`; because that
/// selection depends only on the set of observations, `absorb` is exactly
/// associative and commutative. `finalize` sorts the survivors by key,
/// restoring the monolithic iteration order.
///
/// With `bound >= n` nothing is evicted and the finalized vector equals the
/// monolithic collection exactly; [`KeyedSamples::unbounded`] pins that mode.
/// (Not serde-serializable: the vendored derive does not support generics.)
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedSamples<V> {
    bound: usize,
    seed: u64,
    /// `(priority, key, value)` triples, kept below `bound` in count.
    items: Vec<(u64, u64, V)>,
}

impl<V: Clone> KeyedSamples<V> {
    /// A reservoir keeping at most `bound` samples, with priorities derived
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn bounded(bound: usize, seed: u64) -> Self {
        assert!(bound > 0, "reservoir bound must be positive");
        Self {
            bound,
            seed,
            items: Vec::new(),
        }
    }

    /// A reservoir that never evicts: `finalize` returns every pushed value
    /// in key order, exactly as a monolithic pass would collect them.
    pub fn unbounded() -> Self {
        Self {
            bound: usize::MAX,
            seed: 0,
            items: Vec::new(),
        }
    }

    /// Records `value` under the unique `key`.
    pub fn push(&mut self, key: u64, value: V) {
        let priority = if self.bound == usize::MAX {
            0
        } else {
            splitmix(self.seed ^ key)
        };
        self.items.push((priority, key, value));
        if self.items.len() > self.bound.saturating_mul(2) {
            self.shrink();
        }
    }

    /// Number of currently retained samples.
    pub fn len(&self) -> usize {
        self.items.len().min(self.bound)
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn shrink(&mut self) {
        if self.items.len() > self.bound {
            self.items
                .sort_unstable_by_key(|&(priority, key, _)| (priority, key));
            self.items.truncate(self.bound);
        }
    }
}

impl<V: Clone> Mergeable for KeyedSamples<V> {
    type Output = Vec<V>;

    fn identity() -> Self {
        Self::unbounded()
    }

    fn absorb(&mut self, other: &Self) {
        if other.items.is_empty() && other.bound == usize::MAX {
            return;
        }
        if self.items.is_empty() && self.bound == usize::MAX && other.bound != usize::MAX {
            self.bound = other.bound;
            self.seed = other.seed;
        }
        assert!(
            self.bound == other.bound && (self.seed == other.seed || other.bound == usize::MAX),
            "reservoir configurations must match"
        );
        self.items.extend(other.items.iter().cloned());
        self.shrink();
    }

    fn finalize(mut self) -> Vec<V> {
        self.shrink();
        self.items.sort_unstable_by_key(|&(_, key, _)| key);
        self.items.into_iter().map(|(_, _, v)| v).collect()
    }
}

/// The splitmix64 finalizer: a bijective avalanche of the input.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_sum_is_grouping_independent() {
        let values = [1e16, 1.0, -1e16, 1e-8, 3.5, -7.25, 1e300, -1e300];
        let mut whole = ExactSum::new();
        for &v in &values {
            whole.push(v);
        }
        for split in 1..values.len() {
            let (a, b) = values.split_at(split);
            let mut left = ExactSum::new();
            let mut right = ExactSum::new();
            for &v in a {
                left.push(v);
            }
            for &v in b {
                right.push(v);
            }
            left.absorb(&right);
            assert_eq!(left.value().to_bits(), whole.value().to_bits());
        }
    }

    #[test]
    fn exact_sum_beats_naive_summation() {
        // Classic cancellation: naive summation loses the small term.
        let mut s = ExactSum::new();
        s.push(1e16);
        s.push(1.0);
        s.push(-1e16);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn fixed_histogram_bins_and_merges() {
        let mut a = FixedHistogram::with_edges(vec![0.0, 1.0, 2.0]);
        let mut b = FixedHistogram::with_edges(vec![0.0, 1.0, 2.0]);
        a.observe(0.5);
        a.observe(-1.0);
        b.observe(1.5);
        b.observe(7.0);
        b.observe(f64::NAN);
        a.absorb(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.below(), 2);
        assert_eq!(a.above(), 1);
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn keyed_samples_unbounded_restores_order() {
        let mut a = KeyedSamples::unbounded();
        let mut b = KeyedSamples::unbounded();
        b.push(1, "b");
        a.push(2, "c");
        a.push(0, "a");
        a.absorb(&b);
        assert_eq!(a.finalize(), vec!["a", "b", "c"]);
    }

    #[test]
    fn bounded_reservoir_matches_when_bound_covers_n() {
        let mut r = KeyedSamples::bounded(100, 7);
        for k in 0..50u64 {
            r.push(k, k * 10);
        }
        assert_eq!(r.finalize(), (0..50u64).map(|k| k * 10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_reservoir_is_partition_independent() {
        let keys: Vec<u64> = (0..200).collect();
        let whole = {
            let mut r = KeyedSamples::bounded(32, 42);
            for &k in &keys {
                r.push(k, k);
            }
            r.finalize()
        };
        let halved = {
            let mut left = KeyedSamples::bounded(32, 42);
            let mut right = KeyedSamples::bounded(32, 42);
            for &k in &keys[..71] {
                left.push(k, k);
            }
            for &k in &keys[71..] {
                right.push(k, k);
            }
            right.absorb(&left);
            right.finalize()
        };
        assert_eq!(whole, halved);
        assert_eq!(whole.len(), 32);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn mismatched_countvec_rejected() {
        let mut a = CountVec::zeros(2);
        let b = CountVec::zeros(3);
        a.absorb(&b);
    }

    // ---- Mergeable laws: associativity, commutativity, identity ----------

    /// Checks absorb associativity/commutativity and identity neutrality,
    /// comparing accumulators through `canon` (the finalized statistic for
    /// types whose internal state is representation-dependent).
    fn law_check<M, K, FB, FC>(parts: &[Vec<f64>], build: FB, canon: FC)
    where
        M: Mergeable + Clone,
        K: PartialEq + std::fmt::Debug,
        FB: Fn(&[f64]) -> M,
        FC: Fn(&M) -> K,
    {
        let accs: Vec<M> = parts.iter().map(|p| build(p)).collect();
        if accs.len() < 3 {
            return;
        }
        let (a, b, c) = (&accs[0], &accs[1], &accs[2]);
        // Associativity: (a + b) + c == a + (b + c).
        let mut left = a.clone();
        left.absorb(b);
        left.absorb(c);
        let mut bc = b.clone();
        bc.absorb(c);
        let mut right = a.clone();
        right.absorb(&bc);
        assert_eq!(canon(&left), canon(&right), "absorb must be associative");
        // Commutativity: a + b == b + a.
        let mut ab = a.clone();
        ab.absorb(b);
        let mut ba = b.clone();
        ba.absorb(a);
        assert_eq!(canon(&ab), canon(&ba), "absorb must be commutative");
        // Identity: id + a == a.
        let mut id = M::identity();
        id.absorb(a);
        assert_eq!(canon(&id), canon(a), "identity must be neutral");
    }

    proptest! {
        #[test]
        fn exact_sum_laws(parts in prop::collection::vec(
            prop::collection::vec(-1e12f64..1e12, 0..20), 3..4))
        {
            law_check(&parts, |vals| {
                let mut s = ExactSum::new();
                for &v in vals { s.push(v); }
                s
            }, |s| s.value().to_bits());
        }

        #[test]
        fn counter_laws(parts in prop::collection::vec(
            prop::collection::vec(0.0f64..100.0, 0..20), 3..4))
        {
            law_check(&parts, |vals| Counter(vals.len() as u64), Clone::clone);
        }

        #[test]
        fn count_vec_laws(parts in prop::collection::vec(
            prop::collection::vec(0.0f64..8.0, 0..20), 3..4))
        {
            law_check(&parts, |vals| {
                let mut c = CountVec::zeros(8);
                for &v in vals { c.add(v as usize, 1); }
                c
            }, Clone::clone);
        }

        #[test]
        fn count_matrix_laws(parts in prop::collection::vec(
            prop::collection::vec(0.0f64..12.0, 0..20), 3..4))
        {
            law_check(&parts, |vals| {
                let mut m = CountMatrix::zeros(3, 4);
                for &v in vals { m.add(v as usize / 4, v as usize % 4, 1); }
                m
            }, Clone::clone);
        }

        #[test]
        fn fixed_histogram_laws(parts in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 0..20), 3..4))
        {
            law_check(&parts, |vals| {
                let mut h = FixedHistogram::with_edges(vec![0.0, 2.0, 5.0]);
                for &v in vals { h.observe(v); }
                h
            }, Clone::clone);
        }

        #[test]
        fn keyed_samples_laws(splits in prop::collection::vec(0usize..30, 3..4)) {
            // Build three disjoint key ranges so keys stay unique.
            let mut next = 0u64;
            let parts: Vec<Vec<f64>> = splits.iter().map(|&n| {
                let p: Vec<f64> = (0..n).map(|i| (next + i as u64) as f64).collect();
                next += n as u64;
                p
            }).collect();
            // Canonicalize state before comparing: retained sets are equal,
            // internal vector order may differ.
            fn canon(mut s: KeyedSamples<u64>) -> Vec<(u64, u64, u64)> {
                s.items.sort_unstable();
                s.items
            }
            let build = |vals: &[f64]| {
                let mut r = KeyedSamples::bounded(16, 9);
                for &v in vals { r.push(v as u64, v as u64); }
                r
            };
            let accs: Vec<KeyedSamples<u64>> = parts.iter().map(|p| build(p)).collect();
            let (a, b, c) = (&accs[0], &accs[1], &accs[2]);
            let mut left = a.clone();
            left.absorb(b);
            left.absorb(c);
            let mut bc = b.clone();
            bc.absorb(c);
            let mut right = a.clone();
            right.absorb(&bc);
            prop_assert_eq!(canon(left.clone()), canon(right), "associative");
            let mut ab = a.clone();
            ab.absorb(b);
            let mut ba = b.clone();
            ba.absorb(a);
            prop_assert_eq!(canon(ab), canon(ba), "commutative");
            // Unbounded reservoir over the same data finalizes to the full
            // key-ordered collection.
            let mut all = KeyedSamples::unbounded();
            for p in &parts {
                for &v in p {
                    all.push(v as u64, v as u64);
                }
            }
            let n = parts.iter().map(Vec::len).sum::<usize>();
            prop_assert_eq!(all.finalize().len(), n);
        }
    }

    #[test]
    fn counter_and_countvec_finalize() {
        let mut c = Counter::identity();
        c.absorb(&Counter(3));
        assert_eq!(c.finalize(), 3);
        let mut v = CountVec::identity();
        let mut w = CountVec::zeros(2);
        w.add(1, 5);
        v.absorb(&w);
        assert_eq!(v.finalize(), vec![0, 5]);
        let m = CountMatrix::zeros(2, 2);
        assert_eq!(m.finalize().get(1, 1), 0);
    }
}
