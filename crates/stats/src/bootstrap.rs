//! Bootstrap confidence intervals.
//!
//! The study's headline numbers (weekly failure rates, recurrence ratios,
//! mean repair times) are point estimates over one observed year; percentile
//! bootstrap intervals quantify how much they could move under resampling.

use crate::empirical::quantile;
use crate::rng::StreamRng;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Each resample draws from its own pure stream, forked from `rng` by
/// resample index (`fork_index("bootstrap.resample", i)`), so batches can be
/// computed in parallel while staying bit-identical to the sequential loop.
/// The passed `rng` is never consumed: two calls with the same `rng` see the
/// same resampling streams, so callers running several bootstraps should
/// fork a distinctly-labelled stream per call.
///
/// # Errors
///
/// Returns an error for an empty sample, a bad confidence level, or zero
/// resamples.
pub fn bootstrap_ci(
    data: &[f64],
    level: f64,
    resamples: usize,
    rng: &StreamRng,
    statistic: impl Fn(&[f64]) -> f64 + Sync,
) -> Result<ConfidenceInterval> {
    if data.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "bootstrap",
            needed: 1,
            got: 0,
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "level",
            value: level,
        });
    }
    if resamples == 0 {
        return Err(StatsError::InvalidParameter {
            name: "resamples",
            value: 0.0,
        });
    }
    let _span = dcfail_obs::span("stats.bootstrap");
    if dcfail_obs::enabled() {
        dcfail_obs::add("stats.bootstrap.resamples", resamples as u64);
        dcfail_obs::add("stats.bootstrap.forks", resamples as u64);
    }
    let estimate = statistic(data);
    let mut stats = dcfail_par::par_map_index(resamples, |i| {
        let mut stream = rng.fork_index("bootstrap.resample", i as u64);
        let resample: Vec<f64> = (0..data.len())
            .map(|_| data[stream.below(data.len())])
            .collect();
        statistic(&resample)
    });
    stats.sort_unstable_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        estimate,
        lo: quantile(&stats, alpha),
        hi: quantile(&stats, 1.0 - alpha),
        level,
    })
}

/// Bootstrap CI for the sample mean.
///
/// # Errors
///
/// Same conditions as [`bootstrap_ci`].
pub fn bootstrap_mean_ci(
    data: &[f64],
    level: f64,
    resamples: usize,
    rng: &StreamRng,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(data, level, resamples, rng, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, LogNormal};

    #[test]
    fn mean_ci_covers_true_mean() {
        let dist = LogNormal::new(1.0, 0.8).unwrap();
        let mut rng = StreamRng::new(1);
        let mut covered = 0;
        let trials = 40;
        for trial in 0..trials {
            let data: Vec<f64> = (0..400).map(|_| dist.sample(&mut rng)).collect();
            let boot_rng = rng.fork_index("trial", trial);
            let ci = bootstrap_mean_ci(&data, 0.95, 400, &boot_rng).unwrap();
            if ci.contains(dist.mean()) {
                covered += 1;
            }
            assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        }
        // ~95% nominal coverage; allow slack for 40 trials.
        assert!(covered >= 33, "covered {covered}/{trials}");
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let dist = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StreamRng::new(2);
        let small: Vec<f64> = (0..50).map(|_| dist.sample(&mut rng)).collect();
        let large: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let ci_small = bootstrap_mean_ci(&small, 0.95, 300, &rng.fork("small")).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 0.95, 300, &rng.fork("large")).unwrap();
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn custom_statistic_median() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let rng = StreamRng::new(3);
        let ci = bootstrap_ci(&data, 0.9, 300, &rng, |xs| {
            crate::empirical::quantile(xs, 0.5)
        })
        .unwrap();
        assert_eq!(ci.estimate, 50.0);
        assert!(ci.lo < 50.0 && ci.hi > 50.0);
        assert_eq!(ci.level, 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_mean_ci(&data, 0.95, 200, &StreamRng::new(9)).unwrap();
        let b = bootstrap_mean_ci(&data, 0.95, 200, &StreamRng::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let dist = LogNormal::new(0.5, 0.6).unwrap();
        let mut data_rng = StreamRng::new(11);
        let data: Vec<f64> = (0..300).map(|_| dist.sample(&mut data_rng)).collect();
        let rng = StreamRng::new(12);
        dcfail_par::set_thread_override(Some(1));
        let seq = bootstrap_mean_ci(&data, 0.95, 500, &rng).unwrap();
        dcfail_par::set_thread_override(Some(8));
        let par = bootstrap_mean_ci(&data, 0.95, 500, &rng).unwrap();
        dcfail_par::set_thread_override(None);
        assert_eq!(seq, par);
    }

    #[test]
    fn rejects_bad_input() {
        let rng = StreamRng::new(1);
        assert!(bootstrap_mean_ci(&[], 0.95, 100, &rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 1.5, 100, &rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, &rng).is_err());
    }
}
