//! Bootstrap confidence intervals.
//!
//! The study's headline numbers (weekly failure rates, recurrence ratios,
//! mean repair times) are point estimates over one observed year; percentile
//! bootstrap intervals quantify how much they could move under resampling.

use crate::empirical::quantile;
use crate::rng::StreamRng;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// # Errors
///
/// Returns an error for an empty sample, a bad confidence level, or zero
/// resamples.
pub fn bootstrap_ci(
    data: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut StreamRng,
    statistic: impl Fn(&[f64]) -> f64,
) -> Result<ConfidenceInterval> {
    if data.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "bootstrap",
            needed: 1,
            got: 0,
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "level",
            value: level,
        });
    }
    if resamples == 0 {
        return Err(StatsError::InvalidParameter {
            name: "resamples",
            value: 0.0,
        });
    }
    let estimate = statistic(data);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0f64; data.len()];
    for _ in 0..resamples {
        for slot in &mut resample {
            *slot = data[rng.below(data.len())];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistics are finite"));
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        estimate,
        lo: quantile(&stats, alpha),
        hi: quantile(&stats, 1.0 - alpha),
        level,
    })
}

/// Bootstrap CI for the sample mean.
///
/// # Errors
///
/// Same conditions as [`bootstrap_ci`].
pub fn bootstrap_mean_ci(
    data: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut StreamRng,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(data, level, resamples, rng, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, LogNormal};

    #[test]
    fn mean_ci_covers_true_mean() {
        let dist = LogNormal::new(1.0, 0.8).unwrap();
        let mut rng = StreamRng::new(1);
        let mut covered = 0;
        let trials = 40;
        for _ in 0..trials {
            let data: Vec<f64> = (0..400).map(|_| dist.sample(&mut rng)).collect();
            let ci = bootstrap_mean_ci(&data, 0.95, 400, &mut rng).unwrap();
            if ci.contains(dist.mean()) {
                covered += 1;
            }
            assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        }
        // ~95% nominal coverage; allow slack for 40 trials.
        assert!(covered >= 33, "covered {covered}/{trials}");
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let dist = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StreamRng::new(2);
        let small: Vec<f64> = (0..50).map(|_| dist.sample(&mut rng)).collect();
        let large: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let ci_small = bootstrap_mean_ci(&small, 0.95, 300, &mut rng).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 0.95, 300, &mut rng).unwrap();
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn custom_statistic_median() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let mut rng = StreamRng::new(3);
        let ci = bootstrap_ci(&data, 0.9, 300, &mut rng, |xs| {
            crate::empirical::quantile(xs, 0.5)
        })
        .unwrap();
        assert_eq!(ci.estimate, 50.0);
        assert!(ci.lo < 50.0 && ci.hi > 50.0);
        assert_eq!(ci.level, 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = bootstrap_mean_ci(&data, 0.95, 200, &mut StreamRng::new(9)).unwrap();
        let b = bootstrap_mean_ci(&data, 0.95, 200, &mut StreamRng::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = StreamRng::new(1);
        assert!(bootstrap_mean_ci(&[], 0.95, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 1.5, 100, &mut rng).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, &mut rng).is_err());
    }
}
