//! Empirical distributions and summary statistics.
//!
//! Every figure in the paper is built from these primitives: empirical CDFs
//! (Figs. 3, 4, 6), histograms/PDFs (Figs. 3, 6) and mean / median /
//! 25th–75th-percentile summaries (Figs. 2, 7–10 and Tables III, IV, VII).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample: mean, median, percentiles, dispersion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of `data`.
    ///
    /// NaN observations carry no ordering or magnitude information and would
    /// otherwise poison every field (a NaN mean, a NaN max); they are
    /// dropped, with the drop count exposed through the
    /// `stats.summary.nan_dropped` obs counter. Returns `None` for an empty
    /// (or all-NaN) sample; `n` counts the observations actually used.
    pub fn of(data: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        let dropped = data.len() - sorted.len();
        if dropped > 0 {
            dcfail_obs::add("stats.summary.nan_dropped", dropped as u64);
        }
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Self {
            n,
            mean,
            median: quantile_sorted(&sorted, 0.5),
            p25: quantile_sorted(&sorted, 0.25),
            p75: quantile_sorted(&sorted, 0.75),
            min: sorted[0],
            max: sorted[n - 1],
            std_dev: var.sqrt(),
        })
    }

    /// Coefficient of variation (σ / μ); `None` when the mean is zero.
    pub fn cv(&self) -> Option<f64> {
        (self.mean != 0.0).then(|| self.std_dev / self.mean)
    }
}

/// Quantile of already-sorted data with linear interpolation (type 7, the
/// R/NumPy default).
///
/// `total_cmp` ordering places negative-sign NaNs before `-inf` and
/// positive-sign NaNs after `+inf`, so in a sorted slice NaNs can only sit
/// at the two ends — where they used to silently poison `p100` and every
/// interpolated upper quantile. They are now excluded, with the excluded
/// count exposed through the `stats.quantile.nan_dropped` obs counter.
///
/// # Panics
///
/// Panics if `sorted` has no non-NaN values or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let lead = sorted.iter().take_while(|x| x.is_nan()).count();
    let trail = sorted[lead..]
        .iter()
        .rev()
        .take_while(|x| x.is_nan())
        .count();
    if lead + trail > 0 {
        dcfail_obs::add("stats.quantile.nan_dropped", (lead + trail) as u64);
    }
    let clean = &sorted[lead..sorted.len() - trail];
    assert!(!clean.is_empty(), "quantile of empty sample (all NaN?)");
    let h = (clean.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    clean[lo] + (h - lo as f64) * (clean[hi] - clean[lo])
}

/// Quantile of unsorted data (sorts a copy; NaN values are excluded, see
/// [`quantile_sorted`]).
///
/// # Panics
///
/// Panics if `data` has no non-NaN values or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaN values sort last).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "ECDF of empty sample");
        let mut sorted = data.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (an ECDF cannot be empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// F̂(x) = fraction of observations ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// The sorted underlying sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evenly spaced (x, F̂(x)) points for plotting, `points` of them.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "curve needs at least 2 points");
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Observations outside `[lo, hi)`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outliers: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || x.is_nan() {
            self.outliers += 1;
            return;
        }
        let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
        let bin = bin.min(self.counts.len() - 1);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Adds one observation, treating the range as right-closed `[lo, hi]`:
    /// `x == hi` lands in the last bin instead of counting as an outlier.
    ///
    /// Use this when `hi` was derived from the sample maximum itself (e.g.
    /// machine-age histograms ranged to the oldest machine), where the
    /// half-open convention would misfile the defining observation.
    pub fn add_right_closed(&mut self, x: f64) {
        if x == self.hi {
            let last = self.counts.len() - 1;
            self.counts[last] += 1;
            self.total += 1;
            return;
        }
        self.add(x);
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// In-range observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Out-of-range observations.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Density estimate: (bin_center, pdf) pairs normalized to integrate to 1
    /// over the range. Empty histogram yields all-zero densities.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let norm = if self.total == 0 {
            0.0
        } else {
            1.0 / (self.total as f64 * w)
        };
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 * norm))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p25, 1.75);
        assert_eq!(s.p75, 3.25);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.cv().unwrap() - s.std_dev / 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn cv_none_for_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
        assert_eq!(quantile(&data, 0.5), 3.0);
        assert_eq!(quantile(&data, 0.25), 2.0);
        assert_eq!(quantile(&data, 0.1), 1.4);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn quantile_drops_nan_instead_of_poisoning_p100() {
        // Before the fix, total_cmp sorted the NaN after +inf and p100 (and
        // every interpolated upper quantile) came back NaN.
        let data = [1.0, f64::NAN, 3.0, 2.0];
        assert_eq!(quantile(&data, 1.0), 3.0);
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 0.5), 2.0);
        // Negative-sign NaNs sort *before* -inf under total_cmp; both ends
        // must be trimmed.
        let mixed = [-f64::NAN, 5.0, f64::NAN];
        assert_eq!(quantile(&mixed, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_all_nan_panics() {
        let _ = quantile(&[f64::NAN, f64::NAN], 0.5);
    }

    #[test]
    fn summary_filters_nan() {
        let s = Summary::of(&[4.0, f64::NAN, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.max, 4.0);
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn nan_drops_are_counted_when_metrics_enabled() {
        let Some(handle) = dcfail_obs::ObsHandle::install() else {
            return; // another test holds the exclusive handle
        };
        let _ = quantile(&[1.0, f64::NAN, 2.0], 0.5);
        let _ = Summary::of(&[f64::NAN, 7.0]);
        let report = handle.finish();
        assert_eq!(report.counter("stats.quantile.nan_dropped"), Some(1));
        assert_eq!(report.counter("stats.summary.nan_dropped"), Some(1));
    }

    #[test]
    fn obs_histogram_percentiles_agree_with_quantile_sorted() {
        // dcfail-obs duplicates the type-7 quantile (it sits below this
        // crate in the dependency graph); this pins the two in agreement.
        let mut sorted: Vec<f64> = (0..97).map(|i| f64::from(i) * 1.37 % 11.0).collect();
        sorted.sort_unstable_by(f64::total_cmp);
        let m = dcfail_obs::HistogramMetric::from_sorted("x".to_string(), &sorted);
        assert_eq!(m.p50, quantile_sorted(&sorted, 0.50));
        assert_eq!(m.p95, quantile_sorted(&sorted, 0.95));
        assert_eq!(m.p99, quantile_sorted(&sorted, 0.99));
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.sorted_values(), &[1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 7.3) % 13.0).collect();
        let e = Ecdf::new(&data);
        let curve = e.curve(50);
        assert_eq!(curve.len(), 50);
        for pair in curve.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
            assert!(pair[0].0 <= pair[1].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.0, 2.5, 9.9, 10.0, -0.1, f64::NAN]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.bin_center(0), 1.0);
        let dens = h.density();
        let integral: f64 = dens.iter().map(|(_, d)| d * 2.0).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn right_closed_add_puts_hi_in_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add_right_closed(10.0);
        h.add_right_closed(9.9);
        h.add_right_closed(10.1); // still an outlier
        h.add_right_closed(f64::NAN); // still an outlier
        assert_eq!(h.counts(), &[0, 0, 0, 0, 2]);
        assert_eq!(h.outliers(), 2);
    }

    #[test]
    fn empty_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.density().iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
