//! Survival analysis: the Kaplan–Meier estimator with right-censoring.
//!
//! The paper "collect[s] no inter-failure times for servers that only fail
//! once" — those servers are *right-censored*: they survived from their last
//! failure to the end of the observation window without failing again.
//! Dropping them biases inter-failure times downward; the Kaplan–Meier
//! estimator uses them correctly.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// One subject's outcome: time observed, and whether the event occurred
/// (`true`) or observation was censored (`false`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Time until the event or censoring.
    pub time: f64,
    /// `true` when the event occurred, `false` when censored.
    pub event: bool,
}

impl Observation {
    /// An observed event at `time`.
    pub fn event(time: f64) -> Self {
        Self { time, event: true }
    }

    /// A censored observation at `time`.
    pub fn censored(time: f64) -> Self {
        Self { time, event: false }
    }
}

/// A Kaplan–Meier survival curve: step function S(t).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaplanMeier {
    /// Distinct event times, ascending.
    times: Vec<f64>,
    /// S(t) immediately after each event time.
    survival: Vec<f64>,
    /// Subjects at risk just before each event time.
    at_risk: Vec<usize>,
    /// Events at each event time.
    events: Vec<usize>,
    n: usize,
    n_censored: usize,
}

impl KaplanMeier {
    /// Fits the estimator.
    ///
    /// # Errors
    ///
    /// Returns an error when `observations` is empty, contains non-finite or
    /// negative times, or contains no events at all.
    pub fn fit(observations: &[Observation]) -> Result<Self> {
        if observations.is_empty() {
            return Err(StatsError::NotEnoughData {
                what: "Kaplan-Meier",
                needed: 1,
                got: 0,
            });
        }
        for o in observations {
            if !o.time.is_finite() || o.time < 0.0 {
                return Err(StatsError::InvalidSample {
                    what: "Kaplan-Meier",
                    value: o.time,
                });
            }
        }
        if !observations.iter().any(|o| o.event) {
            return Err(StatsError::NotEnoughData {
                what: "Kaplan-Meier events",
                needed: 1,
                got: 0,
            });
        }
        let mut sorted: Vec<Observation> = observations.to_vec();
        // Events before censorings at ties (the standard convention);
        // observations tied on both fields are interchangeable, so an
        // unstable sort cannot change the estimate.
        sorted.sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then(b.event.cmp(&a.event)));

        let n = sorted.len();
        let mut times = Vec::new();
        let mut survival = Vec::new();
        let mut at_risk_v = Vec::new();
        let mut events_v = Vec::new();
        let mut s = 1.0f64;
        let mut i = 0usize;
        while i < n {
            let t = sorted[i].time;
            let at_risk = n - i;
            let mut d = 0usize; // events at t
            let mut j = i;
            while j < n && sorted[j].time == t {
                if sorted[j].event {
                    d += 1;
                }
                j += 1;
            }
            if d > 0 {
                s *= 1.0 - d as f64 / at_risk as f64;
                times.push(t);
                survival.push(s);
                at_risk_v.push(at_risk);
                events_v.push(d);
            }
            i = j;
        }
        Ok(Self {
            times,
            survival,
            at_risk: at_risk_v,
            events: events_v,
            n,
            n_censored: observations.iter().filter(|o| !o.event).count(),
        })
    }

    /// Survival probability S(t).
    pub fn survival_at(&self, t: f64) -> f64 {
        // Last event time ≤ t.
        let idx = self.times.partition_point(|&x| x <= t);
        if idx == 0 {
            1.0
        } else {
            self.survival[idx - 1]
        }
    }

    /// Event-probability CDF: F(t) = 1 − S(t).
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival_at(t)
    }

    /// Median survival time: smallest event time with S(t) ≤ 0.5, if the
    /// curve drops that far (heavily censored data may never reach 0.5).
    pub fn median(&self) -> Option<f64> {
        self.times
            .iter()
            .zip(&self.survival)
            .find(|&(_, &s)| s <= 0.5)
            .map(|(&t, _)| t)
    }

    /// Restricted mean survival time up to `horizon`: the area under S(t)
    /// from 0 to `horizon`.
    pub fn restricted_mean(&self, horizon: f64) -> f64 {
        let mut area = 0.0;
        let mut prev_t = 0.0;
        let mut prev_s = 1.0;
        for (&t, &s) in self.times.iter().zip(&self.survival) {
            if t >= horizon {
                break;
            }
            area += prev_s * (t - prev_t);
            prev_t = t;
            prev_s = s;
        }
        area + prev_s * (horizon - prev_t).max(0.0)
    }

    /// The curve as `(time, survival)` steps.
    pub fn curve(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times
            .iter()
            .copied()
            .zip(self.survival.iter().copied())
    }

    /// Number of observations fitted.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of censored observations.
    pub fn n_censored(&self) -> usize {
        self.n_censored
    }

    /// Greenwood's formula: the variance of Ŝ(t).
    pub fn variance_at(&self, t: f64) -> f64 {
        let idx = self.times.partition_point(|&x| x <= t);
        if idx == 0 {
            return 0.0;
        }
        let s = self.survival[idx - 1];
        let sum: f64 = (0..idx)
            .map(|i| {
                let d = self.events[i] as f64;
                let r = self.at_risk[i] as f64;
                d / (r * (r - d).max(f64::MIN_POSITIVE))
            })
            .sum();
        s * s * sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncensored_km_equals_ecdf_complement() {
        let obs: Vec<Observation> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&t| Observation::event(t))
            .collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        assert_eq!(km.survival_at(0.5), 1.0);
        assert_eq!(km.survival_at(1.0), 0.75);
        assert_eq!(km.survival_at(2.5), 0.5);
        assert_eq!(km.survival_at(4.0), 0.0);
        assert_eq!(km.cdf(2.5), 0.5);
        assert_eq!(km.median(), Some(2.0));
        assert_eq!(km.n(), 4);
        assert_eq!(km.n_censored(), 0);
    }

    #[test]
    fn textbook_censored_example() {
        // Classic example: events at 6,6,6,7,10,13,16,22,23; censored at
        // 6,9,10,11,17,19,20,25,32,32,34,35 (Freireich 6-MP arm).
        let events = [6.0, 6.0, 6.0, 7.0, 10.0, 13.0, 16.0, 22.0, 23.0];
        let censored = [
            6.0, 9.0, 10.0, 11.0, 17.0, 19.0, 20.0, 25.0, 32.0, 32.0, 34.0, 35.0,
        ];
        let mut obs: Vec<Observation> = events.iter().map(|&t| Observation::event(t)).collect();
        obs.extend(censored.iter().map(|&t| Observation::censored(t)));
        let km = KaplanMeier::fit(&obs).unwrap();
        // Known values: S(6) = 0.8571, S(10) = 0.7529, S(23) = 0.4482.
        assert!((km.survival_at(6.0) - 0.8571).abs() < 1e-3);
        assert!((km.survival_at(10.0) - 0.7529).abs() < 1e-3);
        assert!((km.survival_at(23.0) - 0.4482).abs() < 1e-3);
        assert_eq!(km.median(), Some(23.0));
        assert_eq!(km.n_censored(), 12);
    }

    #[test]
    fn censoring_raises_survival_vs_dropping() {
        // Events at small times plus many long censored subjects: dropping
        // the censored ones (the paper's approach) underestimates survival.
        let mut obs: Vec<Observation> = (1..=10).map(|t| Observation::event(t as f64)).collect();
        obs.extend((0..30).map(|_| Observation::censored(50.0)));
        let km = KaplanMeier::fit(&obs).unwrap();
        let naive_median = 5.5; // median of the uncensored events
        let km_s_at_naive = km.survival_at(naive_median);
        assert!(
            km_s_at_naive > 0.8,
            "S({naive_median}) = {km_s_at_naive}: censored mass must keep survival high"
        );
        assert_eq!(km.median(), None, "curve never reaches 0.5");
    }

    #[test]
    fn restricted_mean_of_exponential_like_data() {
        // S(t) for events at 1,2,...,100 approximates uniform: RMST to 100
        // ≈ 50.
        let obs: Vec<Observation> = (1..=100).map(|t| Observation::event(t as f64)).collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        let rmst = km.restricted_mean(100.0);
        assert!((rmst - 50.0).abs() < 1.5, "RMST {rmst}");
    }

    #[test]
    fn greenwood_variance_grows_with_time() {
        let obs: Vec<Observation> = (1..=20).map(|t| Observation::event(t as f64)).collect();
        let km = KaplanMeier::fit(&obs).unwrap();
        let early = km.variance_at(2.0);
        let later = km.variance_at(10.0);
        assert!(early >= 0.0);
        assert!(later > early);
        assert_eq!(km.variance_at(0.0), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(KaplanMeier::fit(&[]).is_err());
        assert!(KaplanMeier::fit(&[Observation::censored(5.0)]).is_err());
        assert!(KaplanMeier::fit(&[Observation::event(-1.0)]).is_err());
        assert!(KaplanMeier::fit(&[Observation::event(f64::NAN)]).is_err());
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let mut obs: Vec<Observation> = (1..=50)
            .map(|t| Observation::event((t % 13) as f64 + 1.0))
            .collect();
        obs.extend((0..10).map(|i| Observation::censored(i as f64 + 0.5)));
        let km = KaplanMeier::fit(&obs).unwrap();
        let mut prev = 1.0;
        for (_, s) in km.curve() {
            assert!(s <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
    }
}
