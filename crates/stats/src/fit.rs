//! Maximum-likelihood fitting and model selection.
//!
//! The paper fits inter-failure and repair times "with several statistical
//! distributions, i.e., Gamma, Log-normal and Weibull" and picks the winner
//! "according to log likelihood of fitting". This module provides the MLE
//! per family and a [`ModelSelection`] that ranks candidates by
//! log-likelihood (and AIC, which is equivalent here since all families have
//! two parameters).

use crate::dist::{ContinuousDist, Exponential, Gamma, LogNormal, Weibull};
use crate::special::{digamma, trigamma};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};
use std::fmt;

fn validate_positive(what: &'static str, data: &[f64], min_len: usize) -> Result<()> {
    if data.len() < min_len {
        return Err(StatsError::NotEnoughData {
            what,
            needed: min_len,
            got: data.len(),
        });
    }
    for &x in data {
        if !(x.is_finite() && x > 0.0) {
            return Err(StatsError::InvalidSample { what, value: x });
        }
    }
    Ok(())
}

/// Fits an exponential distribution by MLE (rate = 1 / sample mean).
///
/// # Errors
///
/// Returns an error if `data` has fewer than 1 positive finite observation.
pub fn fit_exponential(data: &[f64]) -> Result<Exponential> {
    validate_positive("exponential fit", data, 1)?;
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    Exponential::new(1.0 / mean)
}

/// Fits a log-normal distribution by MLE (moments of `ln x`).
///
/// # Errors
///
/// Returns an error if `data` has fewer than 2 positive finite observations
/// or zero log-variance.
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormal> {
    validate_positive("lognormal fit", data, 2)?;
    let n = data.len() as f64;
    let mu = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let var = data.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
    LogNormal::new(mu, var.sqrt())
}

/// Fits a gamma distribution by MLE.
///
/// Solves `ln k − ψ(k) = ln x̄ − (ln x)̄` with Newton's method from the
/// standard closed-form starting point, then sets `θ = x̄ / k`.
///
/// # Errors
///
/// Returns an error on bad data, degenerate samples (all equal) or
/// non-convergence.
pub fn fit_gamma(data: &[f64]) -> Result<Gamma> {
    validate_positive("gamma fit", data, 2)?;
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        // Jensen gap is zero ⇒ degenerate (constant) sample.
        return Err(StatsError::InvalidSample {
            what: "gamma fit",
            value: s,
        });
    }
    // Minka's closed-form initialization.
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..100 {
        let f = k.ln() - digamma(k) - s;
        let fp = 1.0 / k - trigamma(k);
        let step = f / fp;
        let next = k - step;
        let next = if next <= 0.0 { k / 2.0 } else { next };
        if (next - k).abs() < 1e-10 * k.max(1.0) {
            return Gamma::new(next, mean / next);
        }
        k = next;
    }
    Err(StatsError::NoConvergence { what: "gamma fit" })
}

/// Fits a Weibull distribution by MLE.
///
/// Solves the profile-likelihood shape equation
/// `Σ x^k ln x / Σ x^k − 1/k − (ln x)̄ = 0` with a guarded Newton iteration,
/// then `λ = (Σ x^k / n)^{1/k}`.
///
/// # Errors
///
/// Returns an error on bad data, degenerate samples or non-convergence.
pub fn fit_weibull(data: &[f64]) -> Result<Weibull> {
    validate_positive("weibull fit", data, 2)?;
    let n = data.len() as f64;
    let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let ln_var = data.iter().map(|x| (x.ln() - mean_ln).powi(2)).sum::<f64>() / n;
    if ln_var <= 0.0 {
        return Err(StatsError::InvalidSample {
            what: "weibull fit",
            value: ln_var,
        });
    }
    // Method-of-moments-on-logs start: Var[ln X] = π²/(6 k²).
    let mut k = (std::f64::consts::PI / (6.0f64 * ln_var).sqrt()).max(0.05);

    // Evaluate f(k) and f'(k) with the log-sum-exp trick for stability.
    let eval = |k: f64| -> (f64, f64) {
        let max_ln = data
            .iter()
            .map(|x| x.ln())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut s0 = 0.0; // Σ x^k (rescaled)
        let mut s1 = 0.0; // Σ x^k ln x
        let mut s2 = 0.0; // Σ x^k (ln x)²
        for &x in data {
            let lx = x.ln();
            let w = (k * (lx - max_ln)).exp();
            s0 += w;
            s1 += w * lx;
            s2 += w * lx * lx;
        }
        let r = s1 / s0;
        let f = r - 1.0 / k - mean_ln;
        let fp = (s2 / s0 - r * r) + 1.0 / (k * k);
        (f, fp)
    };

    for _ in 0..200 {
        let (f, fp) = eval(k);
        let step = f / fp;
        let mut next = k - step;
        if next <= 0.0 {
            next = k / 2.0;
        }
        if (next - k).abs() < 1e-10 * k.max(1.0) {
            k = next;
            let max_ln = data
                .iter()
                .map(|x| x.ln())
                .fold(f64::NEG_INFINITY, f64::max);
            let s0: f64 = data.iter().map(|x| (k * (x.ln() - max_ln)).exp()).sum();
            let lambda = (max_ln + (s0 / n).ln() / k).exp();
            return Weibull::new(k, lambda);
        }
        k = next;
    }
    Err(StatsError::NoConvergence {
        what: "weibull fit",
    })
}

/// The family of a fitted model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Exponential (memoryless baseline).
    Exponential,
    /// Gamma.
    Gamma,
    /// Weibull.
    Weibull,
    /// Log-normal.
    LogNormal,
}

impl Family {
    /// The candidate set the paper considers, plus the exponential baseline.
    pub const ALL: [Family; 4] = [
        Family::Exponential,
        Family::Gamma,
        Family::Weibull,
        Family::LogNormal,
    ];

    /// The paper's heavy-tail candidate set (Gamma, Weibull, Log-normal).
    pub const PAPER: [Family; 3] = [Family::Gamma, Family::Weibull, Family::LogNormal];

    /// Family name.
    pub const fn name(self) -> &'static str {
        match self {
            Family::Exponential => "Exponential",
            Family::Gamma => "Gamma",
            Family::Weibull => "Weibull",
            Family::LogNormal => "LogNormal",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fitted distribution of any supported family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FittedDist {
    /// Fitted exponential.
    Exponential(Exponential),
    /// Fitted gamma.
    Gamma(Gamma),
    /// Fitted Weibull.
    Weibull(Weibull),
    /// Fitted log-normal.
    LogNormal(LogNormal),
}

impl FittedDist {
    /// The family of this fit.
    pub fn family(&self) -> Family {
        match self {
            FittedDist::Exponential(_) => Family::Exponential,
            FittedDist::Gamma(_) => Family::Gamma,
            FittedDist::Weibull(_) => Family::Weibull,
            FittedDist::LogNormal(_) => Family::LogNormal,
        }
    }

    /// Borrows the fit as a dynamic distribution.
    pub fn as_dist(&self) -> &dyn ContinuousDist {
        match self {
            FittedDist::Exponential(d) => d,
            FittedDist::Gamma(d) => d,
            FittedDist::Weibull(d) => d,
            FittedDist::LogNormal(d) => d,
        }
    }

    /// Human-readable parameter string, e.g. `"shape=1.20 scale=31.00"`.
    pub fn params(&self) -> String {
        match self {
            FittedDist::Exponential(d) => format!("rate={:.4}", d.rate()),
            FittedDist::Gamma(d) => format!("shape={:.4} scale={:.4}", d.shape(), d.scale()),
            FittedDist::Weibull(d) => format!("shape={:.4} scale={:.4}", d.shape(), d.scale()),
            FittedDist::LogNormal(d) => format!("mu={:.4} sigma={:.4}", d.mu(), d.sigma()),
        }
    }
}

/// One candidate's fit result within a model selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// The fitted distribution.
    pub dist: FittedDist,
    /// Total log-likelihood of the data under the fit.
    pub log_likelihood: f64,
    /// Akaike information criterion (2k − 2 ln L̂).
    pub aic: f64,
}

/// Ranked model selection over a candidate family set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSelection {
    /// Successful fits, best (highest log-likelihood) first.
    pub ranked: Vec<FitResult>,
    /// Number of observations fitted.
    pub n: usize,
}

impl ModelSelection {
    /// Fits every family in `candidates` to `data` and ranks by
    /// log-likelihood. Families that fail to fit are skipped.
    ///
    /// # Errors
    ///
    /// Returns an error if no candidate family could be fitted.
    pub fn fit(data: &[f64], candidates: &[Family]) -> Result<Self> {
        let mut ranked = Vec::new();
        for &family in candidates {
            let dist = match family {
                Family::Exponential => fit_exponential(data).map(FittedDist::Exponential),
                Family::Gamma => fit_gamma(data).map(FittedDist::Gamma),
                Family::Weibull => fit_weibull(data).map(FittedDist::Weibull),
                Family::LogNormal => fit_lognormal(data).map(FittedDist::LogNormal),
            };
            let Ok(dist) = dist else { continue };
            let ll: f64 = data.iter().map(|&x| dist.as_dist().ln_pdf(x)).sum();
            if !ll.is_finite() {
                continue;
            }
            let k = match family {
                Family::Exponential => 1.0,
                _ => 2.0,
            };
            ranked.push(FitResult {
                dist,
                log_likelihood: ll,
                aic: 2.0 * k - 2.0 * ll,
            });
        }
        if ranked.is_empty() {
            return Err(StatsError::NotEnoughData {
                what: "model selection",
                needed: 2,
                got: data.len(),
            });
        }
        // Candidate-family order is the explicit tie-break, so the ranking
        // is a total order independent of sort stability; total_cmp removes
        // the NaN panic path.
        let mut indexed: Vec<(usize, FitResult)> = ranked.into_iter().enumerate().collect();
        indexed.sort_unstable_by(|(i, a), (j, b)| {
            b.log_likelihood.total_cmp(&a.log_likelihood).then(i.cmp(j))
        });
        Ok(Self {
            ranked: indexed.into_iter().map(|(_, r)| r).collect(),
            n: data.len(),
        })
    }

    /// The winning fit.
    pub fn best(&self) -> &FitResult {
        &self.ranked[0]
    }

    /// The fit for a specific family, if it succeeded.
    pub fn for_family(&self, family: Family) -> Option<&FitResult> {
        self.ranked.iter().find(|r| r.dist.family() == family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StreamRng;

    fn sample(dist: &dyn ContinuousDist, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StreamRng::new(seed);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let d = Exponential::new(0.25).unwrap();
        let xs = sample(&d, 50_000, 1);
        let fit = fit_exponential(&xs).unwrap();
        assert!((fit.rate() - 0.25).abs() < 0.01);
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let d = Gamma::new(1.8, 20.0).unwrap();
        let xs = sample(&d, 50_000, 2);
        let fit = fit_gamma(&xs).unwrap();
        assert!((fit.shape() - 1.8).abs() < 0.05, "shape {}", fit.shape());
        assert!((fit.scale() - 20.0).abs() < 0.8, "scale {}", fit.scale());
    }

    #[test]
    fn gamma_fit_small_shape() {
        let d = Gamma::new(0.4, 5.0).unwrap();
        let xs = sample(&d, 50_000, 3);
        let fit = fit_gamma(&xs).unwrap();
        assert!((fit.shape() - 0.4).abs() < 0.02, "shape {}", fit.shape());
    }

    #[test]
    fn weibull_fit_recovers_parameters() {
        let d = Weibull::new(1.4, 30.0).unwrap();
        let xs = sample(&d, 50_000, 4);
        let fit = fit_weibull(&xs).unwrap();
        assert!((fit.shape() - 1.4).abs() < 0.03, "shape {}", fit.shape());
        assert!((fit.scale() - 30.0).abs() < 0.6, "scale {}", fit.scale());
    }

    #[test]
    fn weibull_fit_decreasing_hazard() {
        let d = Weibull::new(0.7, 10.0).unwrap();
        let xs = sample(&d, 50_000, 5);
        let fit = fit_weibull(&xs).unwrap();
        assert!((fit.shape() - 0.7).abs() < 0.02, "shape {}", fit.shape());
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let d = LogNormal::new(2.0, 1.3).unwrap();
        let xs = sample(&d, 50_000, 6);
        let fit = fit_lognormal(&xs).unwrap();
        assert!((fit.mu() - 2.0).abs() < 0.02);
        assert!((fit.sigma() - 1.3).abs() < 0.02);
    }

    #[test]
    fn model_selection_prefers_true_family() {
        // Gamma data should be won by Gamma over LogNormal/Weibull...
        let d = Gamma::new(2.0, 10.0).unwrap();
        let xs = sample(&d, 20_000, 7);
        let sel = ModelSelection::fit(&xs, &Family::ALL).unwrap();
        assert_eq!(sel.best().dist.family(), Family::Gamma);
        assert_eq!(sel.n, 20_000);
        // ...and LogNormal data by LogNormal.
        let d = LogNormal::new(1.0, 1.0).unwrap();
        let xs = sample(&d, 20_000, 8);
        let sel = ModelSelection::fit(&xs, &Family::ALL).unwrap();
        assert_eq!(sel.best().dist.family(), Family::LogNormal);
    }

    #[test]
    fn model_selection_ranks_by_loglik() {
        let d = Weibull::new(0.9, 15.0).unwrap();
        let xs = sample(&d, 10_000, 9);
        let sel = ModelSelection::fit(&xs, &Family::ALL).unwrap();
        for pair in sel.ranked.windows(2) {
            assert!(pair[0].log_likelihood >= pair[1].log_likelihood);
        }
        // AIC orders the same way for equal parameter counts.
        let g = sel.for_family(Family::Gamma).unwrap();
        let w = sel.for_family(Family::Weibull).unwrap();
        assert!(w.log_likelihood > g.log_likelihood);
        assert!(w.aic < g.aic);
    }

    #[test]
    fn fits_reject_bad_input() {
        assert!(fit_gamma(&[]).is_err());
        assert!(fit_gamma(&[1.0]).is_err());
        assert!(fit_gamma(&[1.0, -2.0]).is_err());
        assert!(fit_gamma(&[1.0, f64::NAN]).is_err());
        assert!(fit_gamma(&[3.0, 3.0, 3.0]).is_err()); // degenerate
        assert!(fit_weibull(&[2.0, 2.0]).is_err()); // degenerate
        assert!(fit_lognormal(&[0.0, 1.0]).is_err());
        assert!(fit_exponential(&[]).is_err());
    }

    #[test]
    fn fitted_dist_accessors() {
        let xs = sample(&Gamma::new(2.0, 5.0).unwrap(), 5_000, 10);
        let sel = ModelSelection::fit(&xs, &Family::PAPER).unwrap();
        let best = sel.best();
        assert!(!best.dist.params().is_empty());
        assert!(best.dist.as_dist().mean() > 0.0);
        // PAPER set excludes exponential.
        assert!(sel.for_family(Family::Exponential).is_none());
    }

    #[test]
    fn family_display() {
        assert_eq!(Family::Gamma.to_string(), "Gamma");
        assert_eq!(Family::LogNormal.name(), "LogNormal");
        assert_eq!(Family::ALL.len(), 4);
        assert_eq!(Family::PAPER.len(), 3);
    }
}
