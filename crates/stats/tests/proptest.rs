//! Property tests for the statistics substrate.

#![allow(clippy::unwrap_used)]

use dcfail_stats::binning::Bins;
use dcfail_stats::dist::{ContinuousDist, Exponential, Gamma, LogNormal, Pareto, Uniform, Weibull};
use dcfail_stats::empirical::{quantile, Ecdf, Summary};
use dcfail_stats::kmeans::{KMeans, KMeansConfig};
use dcfail_stats::rng::StreamRng;
use dcfail_stats::special::{digamma, ln_gamma, reg_lower_gamma, trigamma};
use dcfail_stats::survival::{KaplanMeier, Observation};
use proptest::prelude::*;

fn all_dists(a: f64, b: f64) -> Vec<Box<dyn ContinuousDist>> {
    vec![
        Box::new(Exponential::new(1.0 / b).unwrap()),
        Box::new(Gamma::new(a, b).unwrap()),
        Box::new(Weibull::new(a, b).unwrap()),
        Box::new(LogNormal::new(b.ln(), a).unwrap()),
        Box::new(Uniform::new(0.0, b).unwrap()),
        Box::new(Pareto::new(b, a + 1.0).unwrap()),
    ]
}

proptest! {
    /// Γ satisfies its defining recurrence: ln Γ(x+1) = ln x + ln Γ(x).
    #[test]
    fn gamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "x = {x}: {lhs} vs {rhs}");
    }

    /// ψ satisfies ψ(x+1) = ψ(x) + 1/x, and ψ' satisfies the analogue.
    #[test]
    fn digamma_recurrence(x in 0.05f64..50.0) {
        prop_assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-9);
        prop_assert!((trigamma(x + 1.0) - trigamma(x) + 1.0 / (x * x)).abs() < 1e-8);
    }

    /// P(a, ·) is a CDF in x: monotone, 0 at 0, → 1.
    #[test]
    fn incomplete_gamma_is_cdf(a in 0.1f64..20.0, x in 0.0f64..100.0) {
        let p = reg_lower_gamma(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = reg_lower_gamma(a, x + 1.0);
        prop_assert!(p2 >= p - 1e-12);
        prop_assert_eq!(reg_lower_gamma(a, 0.0), 0.0);
    }

    /// Every distribution: samples in support, CDF monotone in [0,1],
    /// pdf nonnegative, and CDF-at-sample is roughly uniform in median.
    #[test]
    fn distribution_invariants(a in 0.4f64..4.0, b in 0.5f64..30.0, seed in 0u64..1000) {
        let mut rng = StreamRng::new(seed);
        for d in all_dists(a, b) {
            let xs: Vec<f64> = (0..64).map(|_| d.sample(&mut rng)).collect();
            for &x in &xs {
                prop_assert!(x.is_finite(), "{} sampled {x}", d.family());
                prop_assert!(d.pdf(x) >= 0.0);
                let c = d.cdf(x);
                prop_assert!((0.0..=1.0).contains(&c), "{}: cdf = {c}", d.family());
            }
            // Monotonicity at a few probes.
            let mut prev = -1.0;
            for i in 0..10 {
                let x = b * i as f64 / 3.0;
                let c = d.cdf(x);
                prop_assert!(c >= prev - 1e-12);
                prev = c;
            }
        }
    }

    /// Summary invariants: min ≤ p25 ≤ median ≤ p75 ≤ max, mean within
    /// [min, max].
    #[test]
    fn summary_ordering(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    /// Quantiles are monotone in the level.
    #[test]
    fn quantile_monotone(values in prop::collection::vec(0.0f64..1e6, 2..200), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&values, lo) <= quantile(&values, hi) + 1e-9);
    }

    /// ECDF at each sorted sample point steps by at least 1/n.
    #[test]
    fn ecdf_steps(values in prop::collection::vec(0.0f64..1000.0, 1..100)) {
        let e = Ecdf::new(&values);
        let n = values.len() as f64;
        for &v in e.sorted_values() {
            prop_assert!(e.eval(v) >= 1.0 / n - 1e-12);
        }
        prop_assert_eq!(e.eval(f64::MAX), 1.0);
        prop_assert_eq!(e.eval(-1.0), 0.0);
    }

    /// Bins: every in-range value maps to exactly one bin whose edges
    /// bracket it.
    #[test]
    fn bins_partition(edges_raw in prop::collection::btree_set(0i64..10_000, 2..12), probe in 0i64..10_000) {
        let edges: Vec<f64> = edges_raw.iter().map(|&e| e as f64).collect();
        let bins = Bins::from_edges(edges.clone());
        let x = probe as f64;
        match bins.index_of(x) {
            Some(i) => {
                prop_assert!(i < bins.len());
                prop_assert!(edges[i] <= x);
                prop_assert!(x <= edges[i + 1]);
            }
            None => {
                prop_assert!(x < edges[0] || x > *edges.last().unwrap());
            }
        }
    }

    /// K-means: every point is assigned to its nearest centroid, and
    /// inertia is nonnegative and reproducible.
    #[test]
    fn kmeans_invariants(seed in 0u64..200, k in 1usize..5) {
        let mut data_rng = StreamRng::new(seed);
        let points: Vec<Vec<f32>> = (0..40)
            .map(|_| (0..3).map(|_| data_rng.standard_normal() as f32).collect())
            .collect();
        let km = KMeans::fit(&points, KMeansConfig::new(k), &mut StreamRng::new(seed)).unwrap();
        prop_assert!(km.inertia() >= 0.0);
        prop_assert_eq!(km.assignments().len(), points.len());
        for (p, &a) in points.iter().zip(km.assignments()) {
            prop_assert_eq!(km.predict(p), a);
        }
        let km2 = KMeans::fit(&points, KMeansConfig::new(k), &mut StreamRng::new(seed)).unwrap();
        prop_assert_eq!(km.assignments(), km2.assignments());
    }

    /// Kaplan–Meier survival is monotone nonincreasing in [0, 1], and with
    /// zero censoring matches 1 − ECDF at event times.
    #[test]
    fn km_invariants(times in prop::collection::vec(0.1f64..100.0, 1..60), censor_every in 2usize..5) {
        let obs: Vec<Observation> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if i % censor_every == 0 && i > 0 {
                    Observation::censored(t)
                } else {
                    Observation::event(t)
                }
            })
            .collect();
        prop_assume!(obs.iter().any(|o| o.event));
        let km = KaplanMeier::fit(&obs).unwrap();
        let mut prev = 1.0;
        for i in 0..20 {
            let t = 100.0 * i as f64 / 19.0;
            let s = km.survival_at(t);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= prev + 1e-12);
            prev = s;
        }
        prop_assert!(km.restricted_mean(100.0) >= 0.0);
        prop_assert!(km.restricted_mean(100.0) <= 100.0 + 1e-9);
    }

    /// Fit → sample → fit round-trips stay in a loose band even for small
    /// samples (no crashes, finite outputs).
    #[test]
    fn fit_is_total_on_valid_input(seed in 0u64..300, shape in 0.4f64..3.0, scale in 0.5f64..20.0) {
        let mut rng = StreamRng::new(seed);
        let g = Gamma::new(shape, scale).unwrap();
        let xs: Vec<f64> = (0..100).map(|_| g.sample(&mut rng)).collect();
        let fit = dcfail_stats::fit::fit_gamma(&xs).unwrap();
        prop_assert!(fit.shape().is_finite() && fit.shape() > 0.0);
        prop_assert!(fit.scale().is_finite() && fit.scale() > 0.0);
    }

    /// Open-ended bins keep their defining promise: no finite non-NaN value
    /// at or above the first edge maps to `None`, everything at or above
    /// the last finite edge lands in the labelled-open top bin, and below
    /// it the mapping agrees with the closed bins over the same edges.
    #[test]
    fn open_last_bins_never_drop_high_values(
        base in -1e6f64..1e6,
        steps in proptest::collection::vec(0.001f64..1e3, 1..8),
        probe in -1e9f64..1e9,
    ) {
        let mut edges = vec![base];
        for s in &steps {
            let next = edges[edges.len() - 1] + s;
            edges.push(next);
        }
        let last = edges[edges.len() - 1];
        let bins = Bins::open_last(edges.clone());
        prop_assert!(bins.is_open_ended());
        prop_assert_eq!(bins.len(), edges.len());
        prop_assert!(bins.label(bins.len() - 1).ends_with('+'));
        match bins.index_of(probe) {
            None => prop_assert!(probe < edges[0], "{probe} dropped in-range"),
            Some(i) => {
                prop_assert!(probe >= edges[0]);
                prop_assert!(i < bins.len());
                if probe >= last {
                    prop_assert_eq!(i, bins.len() - 1);
                } else {
                    prop_assert_eq!(Bins::from_edges(edges.clone()).index_of(probe), Some(i));
                }
            }
        }
        prop_assert_eq!(bins.index_of(f64::NAN), None);
        prop_assert_eq!(bins.index_of(f64::INFINITY), None, "only finite values bin");
    }
}
