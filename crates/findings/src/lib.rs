//! # dcfail-findings
//!
//! The shared finding/severity/report machinery behind the workspace's two
//! static lint passes: `dcfail-audit` (rules over failure *datasets*) and
//! `dcfail-dlint` (rules over the workspace's own *source*). Both passes
//! share one report shape — a catalog of typed rules, each finding carrying
//! a rule id, a severity, offending subjects and a message, the whole run
//! renderable as text or JSON — so the machinery lives here once and each
//! pass contributes only its catalog.
//!
//! A catalog is an enum implementing [`Rule`], most conveniently generated
//! by the [`rule_catalog!`] macro; [`Diagnostic`] and [`Report`] are generic
//! over it.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::fmt;
use std::fmt::Write as _;

// Re-exported for `rule_catalog!` expansions, which must name the serde
// traits by absolute path from the invoking crate.
#[doc(hidden)]
pub use serde;

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// Ordered: `Info < Warn < Error`, so `report.worst()` compares naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory observation; the subject is usable as-is.
    Info,
    /// Suspicious but tolerable; results may be skewed.
    Warn,
    /// Contract violation; the subject is not trustworthy.
    Error,
}

impl Severity {
    /// Lowercase display label ("error", "warn", "info").
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One rule of a lint catalog: a stable code, a fixed severity and a
/// one-line description of the invariant it checks.
///
/// The associated [`Rule::DOMAIN`] labels the pass in rendered summaries
/// (`"audit"`, `"dlint"`) and serde error messages.
pub trait Rule: Copy + Ord + fmt::Debug + 'static {
    /// Short name of the pass this catalog belongs to.
    const DOMAIN: &'static str;

    /// Every rule in the catalog, in declaration order.
    fn all() -> &'static [Self];

    /// Stable code of this rule (kebab-case for audit, `D01`-style for
    /// dlint) — the serialized form.
    fn code(self) -> &'static str;

    /// Severity a finding of this rule carries.
    fn severity(self) -> Severity;

    /// One-line description of the invariant the rule checks.
    fn description(self) -> &'static str;

    /// Looks a rule up by its stable code.
    fn from_code(code: &str) -> Option<Self> {
        Self::all().iter().copied().find(|r| r.code() == code)
    }
}

/// Generates a rule-catalog enum implementing [`Rule`], with inherent
/// `ALL`/`code`/`severity`/`description`/`from_code` mirrors (so callers
/// need not import the trait), `Display` as the code, and serde as the code
/// string.
///
/// ```
/// dcfail_findings::rule_catalog! {
///     /// Demo catalog.
///     DemoRule, domain = "demo" {
///         /// Something is off.
///         SomethingOff = ("something-off", Warn, "something should not be off");
///     }
/// }
/// assert_eq!(DemoRule::SomethingOff.code(), "something-off");
/// ```
#[macro_export]
macro_rules! rule_catalog {
    (
        $(#[$enum_meta:meta])*
        $name:ident, domain = $domain:literal {
            $( $(#[$meta:meta])* $variant:ident = ($code:literal, $sev:ident, $desc:literal); )+
        }
    ) => {
        $(#[$enum_meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum $name {
            $( $(#[$meta])* $variant, )+
        }

        impl $name {
            /// Every rule in the catalog, in declaration order.
            pub const ALL: &'static [$name] = &[ $($name::$variant),+ ];

            /// Stable code of this rule.
            pub const fn code(self) -> &'static str {
                match self { $($name::$variant => $code),+ }
            }

            /// Severity a finding of this rule carries.
            pub const fn severity(self) -> $crate::Severity {
                match self { $($name::$variant => $crate::Severity::$sev),+ }
            }

            /// One-line description of the invariant the rule checks.
            pub const fn description(self) -> &'static str {
                match self { $($name::$variant => $desc),+ }
            }

            /// Looks a rule up by its stable code.
            pub fn from_code(code: &str) -> Option<$name> {
                $name::ALL.iter().copied().find(|r| r.code() == code)
            }
        }

        impl $crate::Rule for $name {
            const DOMAIN: &'static str = $domain;

            fn all() -> &'static [Self] {
                $name::ALL
            }

            fn code(self) -> &'static str {
                $name::code(self)
            }

            fn severity(self) -> $crate::Severity {
                $name::severity(self)
            }

            fn description(self) -> &'static str {
                $name::description(self)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                f.write_str(self.code())
            }
        }

        impl $crate::serde::Serialize for $name {
            fn to_value(&self) -> $crate::serde::Value {
                $crate::serde::Value::Str(self.code().to_string())
            }
        }

        impl $crate::serde::Deserialize for $name {
            fn from_value(
                value: &$crate::serde::Value,
            ) -> ::std::result::Result<Self, $crate::serde::Error> {
                match value {
                    $crate::serde::Value::Str(code) => {
                        $name::from_code(code).ok_or_else(|| {
                            $crate::serde::Error::custom(::std::format!(
                                "unknown {} rule '{code}'",
                                $domain
                            ))
                        })
                    }
                    _ => Err($crate::serde::Error::custom(::std::concat!(
                        "expected ", $domain, " rule code string"
                    ))),
                }
            }
        }
    };
}

/// Maximum offending subjects retained per diagnostic; the message carries
/// the total so truncation loses no information, only bulk.
pub const MAX_SUBJECTS: usize = 12;

/// One finding: a violated rule plus the subjects that violate it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic<R> {
    /// The violated rule.
    pub rule: R,
    /// Severity (redundant with `rule.severity()`, kept explicit so JSON
    /// consumers need no rule table).
    pub severity: Severity,
    /// Offending subjects (entity ids, `file:line` locations), capped at
    /// [`MAX_SUBJECTS`].
    pub subjects: Vec<String>,
    /// Human-readable description including the total offender count.
    pub message: String,
}

impl<R: Rule> Diagnostic<R> {
    /// Creates a diagnostic for `rule`, capping `subjects` and deriving the
    /// severity from the rule.
    pub fn new(rule: R, mut subjects: Vec<String>, message: impl Into<String>) -> Self {
        subjects.truncate(MAX_SUBJECTS);
        Self {
            rule,
            severity: rule.severity(),
            subjects,
            message: message.into(),
        }
    }
}

impl<R: Rule + fmt::Display> fmt::Display for Diagnostic<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if !self.subjects.is_empty() {
            write!(f, " ({})", self.subjects.join(", "))?;
        }
        Ok(())
    }
}

impl<R: Rule> Serialize for Diagnostic<R> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "rule".to_string(),
                serde::Value::Str(self.rule.code().to_string()),
            ),
            ("severity".to_string(), self.severity.to_value()),
            ("subjects".to_string(), self.subjects.to_value()),
            (
                "message".to_string(),
                serde::Value::Str(self.message.clone()),
            ),
        ])
    }
}

impl<R: Rule> Deserialize for Diagnostic<R> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("diagnostic missing field '{name}'")))
        };
        let rule = match field("rule")? {
            serde::Value::Str(code) => R::from_code(code).ok_or_else(|| {
                serde::Error::custom(format!("unknown {} rule '{code}'", R::DOMAIN))
            })?,
            other => {
                return Err(serde::Error::custom(format!(
                    "expected rule code string, got {}",
                    other.kind()
                )))
            }
        };
        Ok(Self {
            rule,
            severity: Severity::from_value(field("severity")?)?,
            subjects: Vec::<String>::from_value(field("subjects")?)?,
            message: String::from_value(field("message")?)?,
        })
    }
}

/// The result of one lint pass: every finding, renderable as text or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Report<R> {
    /// All findings, in catalog order.
    pub diagnostics: Vec<Diagnostic<R>>,
}

impl<R> Default for Report<R> {
    fn default() -> Self {
        Self {
            diagnostics: Vec::new(),
        }
    }
}

impl<R: Rule> Report<R> {
    /// Wraps a list of findings into a report.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic<R>>) -> Self {
        Self { diagnostics }
    }

    /// True when no Error-level finding exists (Warn/Info are tolerated).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// True when there are no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of Error-level findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of Warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of Info-level findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    /// The most severe finding level, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when some finding names `rule`.
    pub fn has(&self, rule: R) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// The first finding for `rule`, if present.
    pub fn find(&self, rule: R) -> Option<&Diagnostic<R>> {
        self.diagnostics.iter().find(|d| d.rule == rule)
    }

    /// Renders the report as human-readable text, one line per finding plus
    /// a summary line labeled with the pass's [`Rule::DOMAIN`].
    pub fn render_text(&self) -> String
    where
        R: fmt::Display,
    {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} info, {} rule(s) evaluated",
            R::DOMAIN,
            self.error_count(),
            self.warn_count(),
            self.info_count(),
            R::all().len(),
        );
        out
    }
}

impl<R: Rule + fmt::Display> fmt::Display for Report<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

impl<R: Rule> Serialize for Report<R> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "diagnostics".to_string(),
            self.diagnostics.to_value(),
        )])
    }
}

impl<R: Rule> Deserialize for Report<R> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let diagnostics = value
            .get("diagnostics")
            .ok_or_else(|| serde::Error::custom("report missing field 'diagnostics'"))?;
        Ok(Self {
            diagnostics: Vec::<Diagnostic<R>>::from_value(diagnostics)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    rule_catalog! {
        /// A tiny catalog exercising every severity.
        TestRule, domain = "testpass" {
            /// An error-level rule.
            Broken = ("broken", Error, "must not be broken");
            /// A warn-level rule.
            Odd = ("odd", Warn, "should not be odd");
            /// An info-level rule.
            Note = ("note", Info, "worth noting");
        }
    }

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn catalog_codes_round_trip() {
        assert_eq!(TestRule::ALL.len(), 3);
        for &rule in TestRule::ALL {
            assert_eq!(TestRule::from_code(rule.code()), Some(rule));
            assert!(!rule.description().is_empty());
        }
        assert_eq!(TestRule::from_code("nope"), None);
        assert_eq!(TestRule::Broken.severity(), Severity::Error);
        assert_eq!(TestRule::Broken.to_string(), "broken");
    }

    #[test]
    fn diagnostic_caps_subjects_and_derives_severity() {
        let subjects: Vec<String> = (0..40).map(|i| format!("s{i}")).collect();
        let d = Diagnostic::new(TestRule::Broken, subjects, "40 offender(s)");
        assert_eq!(d.subjects.len(), MAX_SUBJECTS);
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn report_counts_worst_and_renders_domain() {
        let report = Report::from_diagnostics(vec![
            Diagnostic::new(TestRule::Note, vec![], "a note"),
            Diagnostic::new(TestRule::Odd, vec!["x".into()], "1 oddity"),
        ]);
        assert!(report.is_clean());
        assert!(!report.is_empty());
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.info_count(), 1);
        assert_eq!(report.worst(), Some(Severity::Warn));
        assert!(report.has(TestRule::Note));
        assert!(report.find(TestRule::Odd).is_some());
        let text = report.render_text();
        assert!(text.contains("warn[odd]"));
        assert!(text.contains("testpass: 0 error(s), 1 warning(s), 1 info, 3 rule(s) evaluated"));
    }

    #[test]
    fn report_json_round_trips() {
        let report = Report::from_diagnostics(vec![Diagnostic::new(
            TestRule::Broken,
            vec!["a".into(), "b".into()],
            "2 offender(s)",
        )]);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"broken\""));
        let back: Report<TestRule> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn unknown_rule_code_is_rejected_with_domain() {
        let err = serde_json::from_str::<Report<TestRule>>(
            "{\"diagnostics\":[{\"rule\":\"zzz\",\"severity\":\"Info\",\"subjects\":[],\"message\":\"\"}]}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown testpass rule"), "{err}");
    }
}
