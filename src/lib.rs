//! # dcfail
//!
//! Facade crate re-exporting the dcfail workspace: a datacenter failure-trace
//! simulator and analysis toolkit reproducing Birke et al., *"Failure Analysis
//! of Virtual and Physical Machines"* (DSN 2014).
//!
//! See [`model`], [`stats`], [`synth`], [`tickets`], [`analysis`],
//! [`report`], [`serve`], [`stream`], [`audit`], [`chaos`], [`ckpt`],
//! [`par`] and [`obs`] for the individual subsystems. The artifacts are
//! servable as a long-running HTTP/JSON daemon through [`serve`] (or `repro
//! serve`): snapshot-isolated queries over the [`report::Toolkit`] handle,
//! with bounded queues and typed backpressure. Datasets can also be consumed as
//! an event-at-a-time feed through [`stream`], whose windowed estimators
//! are pinned byte-identical to the batch figures (`repro stream --smoke`
//! checks the digests). Long sharded runs can be made crash-safe through
//! [`ckpt`], which persists per-shard state as checksummed segments behind
//! an injectable [`ckpt::FaultFs`] — a run killed at any I/O operation and
//! resumed ([`shard::resume_sharded`]) is byte-identical to an uninterrupted
//! one (`repro crashtest` proves it by sweeping every kill point). The determinism contract those subsystems rely on is itself
//! enforced at the source level by [`dlint`], a static-analysis pass over
//! the workspace's own Rust code (run it with `repro lint`); [`findings`]
//! holds the rule-catalog/report machinery [`dlint`] shares with [`audit`]. Hot paths run on the [`par`] deterministic parallel runtime:
//! set `DCFAIL_THREADS` to pick the worker count (output is bit-identical
//! at any setting; `1` is the sequential fallback). The whole pipeline is
//! instrumented through the [`obs`] tracing/metrics layer — install an
//! [`obs::ObsHandle`] (or run `repro metrics`) to collect per-stage span
//! timings, counters and worker-utilization histograms; when no window is
//! active the instrumentation costs one relaxed atomic load per call and
//! never changes analysis output.
//!
//! ```
//! use dcfail::synth::Scenario;
//! let dataset = Scenario::paper().seed(7).scale(0.05).build().into_dataset();
//! let rates = dcfail::analysis::rates::weekly_failure_rates(&dataset);
//! assert!(rates.all_pm.mean > 0.0);
//! ```
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use dcfail_audit as audit;
pub use dcfail_chaos as chaos;
pub use dcfail_ckpt as ckpt;
pub use dcfail_core as analysis;
pub use dcfail_dlint as dlint;
pub use dcfail_findings as findings;
pub use dcfail_model as model;
pub use dcfail_obs as obs;
pub use dcfail_par as par;
pub use dcfail_report as report;
pub use dcfail_serve as serve;
pub use dcfail_shard as shard;
pub use dcfail_stats as stats;
pub use dcfail_stream as stream;
pub use dcfail_synth as synth;
pub use dcfail_tickets as tickets;
