/root/repo/target/release/examples/trace_export-db14dce41c8f2513.d: examples/trace_export.rs

/root/repo/target/release/examples/trace_export-db14dce41c8f2513: examples/trace_export.rs

examples/trace_export.rs:
