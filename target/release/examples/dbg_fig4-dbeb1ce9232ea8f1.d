/root/repo/target/release/examples/dbg_fig4-dbeb1ce9232ea8f1.d: examples/dbg_fig4.rs

/root/repo/target/release/examples/dbg_fig4-dbeb1ce9232ea8f1: examples/dbg_fig4.rs

examples/dbg_fig4.rs:
