/root/repo/target/release/examples/ticket_triage-f4903008cf548e8e.d: examples/ticket_triage.rs

/root/repo/target/release/examples/ticket_triage-f4903008cf548e8e: examples/ticket_triage.rs

examples/ticket_triage.rs:
