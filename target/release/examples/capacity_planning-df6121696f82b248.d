/root/repo/target/release/examples/capacity_planning-df6121696f82b248.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-df6121696f82b248: examples/capacity_planning.rs

examples/capacity_planning.rs:
