/root/repo/target/release/examples/reliability_report-9e9a9358d135ce0a.d: examples/reliability_report.rs

/root/repo/target/release/examples/reliability_report-9e9a9358d135ce0a: examples/reliability_report.rs

examples/reliability_report.rs:
