/root/repo/target/release/examples/quickstart-881b574f7178321a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-881b574f7178321a: examples/quickstart.rs

examples/quickstart.rs:
