/root/repo/target/release/examples/failure_prediction-daa32fcad4c0660b.d: examples/failure_prediction.rs

/root/repo/target/release/examples/failure_prediction-daa32fcad4c0660b: examples/failure_prediction.rs

examples/failure_prediction.rs:
