/root/repo/target/release/examples/trace_export-ccdc81912012fa74.d: examples/trace_export.rs

/root/repo/target/release/examples/trace_export-ccdc81912012fa74: examples/trace_export.rs

examples/trace_export.rs:
