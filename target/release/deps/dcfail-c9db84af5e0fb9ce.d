/root/repo/target/release/deps/dcfail-c9db84af5e0fb9ce.d: src/lib.rs

/root/repo/target/release/deps/dcfail-c9db84af5e0fb9ce: src/lib.rs

src/lib.rs:
