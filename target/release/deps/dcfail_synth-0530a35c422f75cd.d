/root/repo/target/release/deps/dcfail_synth-0530a35c422f75cd.d: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/release/deps/libdcfail_synth-0530a35c422f75cd.rlib: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/release/deps/libdcfail_synth-0530a35c422f75cd.rmeta: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

crates/synth/src/lib.rs:
crates/synth/src/config.rs:
crates/synth/src/hazard.rs:
crates/synth/src/incidents.rs:
crates/synth/src/lifecycle.rs:
crates/synth/src/population.rs:
crates/synth/src/scenario.rs:
crates/synth/src/telemetry_gen.rs:
crates/synth/src/tickets_gen.rs:
