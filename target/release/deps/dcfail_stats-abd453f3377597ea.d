/root/repo/target/release/deps/dcfail_stats-abd453f3377597ea.d: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs

/root/repo/target/release/deps/libdcfail_stats-abd453f3377597ea.rlib: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs

/root/repo/target/release/deps/libdcfail_stats-abd453f3377597ea.rmeta: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs

crates/stats/src/lib.rs:
crates/stats/src/binning.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/corr.rs:
crates/stats/src/dist.rs:
crates/stats/src/empirical.rs:
crates/stats/src/fit.rs:
crates/stats/src/gof.rs:
crates/stats/src/kmeans.rs:
crates/stats/src/rng.rs:
crates/stats/src/special.rs:
crates/stats/src/survival.rs:
crates/stats/src/text.rs:
