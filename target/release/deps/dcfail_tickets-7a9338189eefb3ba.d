/root/repo/target/release/deps/dcfail_tickets-7a9338189eefb3ba.d: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

/root/repo/target/release/deps/libdcfail_tickets-7a9338189eefb3ba.rlib: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

/root/repo/target/release/deps/libdcfail_tickets-7a9338189eefb3ba.rmeta: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

crates/tickets/src/lib.rs:
crates/tickets/src/classify.rs:
crates/tickets/src/extract.rs:
crates/tickets/src/store.rs:
