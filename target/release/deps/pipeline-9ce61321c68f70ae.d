/root/repo/target/release/deps/pipeline-9ce61321c68f70ae.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-9ce61321c68f70ae: tests/pipeline.rs

tests/pipeline.rs:
