/root/repo/target/release/deps/dcfail-399689627f3adaa8.d: src/lib.rs

/root/repo/target/release/deps/libdcfail-399689627f3adaa8.rlib: src/lib.rs

/root/repo/target/release/deps/libdcfail-399689627f3adaa8.rmeta: src/lib.rs

src/lib.rs:
