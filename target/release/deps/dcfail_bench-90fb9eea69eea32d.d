/root/repo/target/release/deps/dcfail_bench-90fb9eea69eea32d.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/libdcfail_bench-90fb9eea69eea32d.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/libdcfail_bench-90fb9eea69eea32d.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
