/root/repo/target/release/deps/repro_shapes-adbe670e68cb3326.d: tests/repro_shapes.rs

/root/repo/target/release/deps/repro_shapes-adbe670e68cb3326: tests/repro_shapes.rs

tests/repro_shapes.rs:
