/root/repo/target/release/deps/dcfail_report-baed54886eabbe34.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/release/deps/libdcfail_report-baed54886eabbe34.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/release/deps/libdcfail_report-baed54886eabbe34.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/extras.rs:
crates/report/src/runners.rs:
crates/report/src/summary.rs:
crates/report/src/table.rs:
