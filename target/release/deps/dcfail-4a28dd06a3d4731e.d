/root/repo/target/release/deps/dcfail-4a28dd06a3d4731e.d: src/lib.rs

/root/repo/target/release/deps/libdcfail-4a28dd06a3d4731e.rlib: src/lib.rs

/root/repo/target/release/deps/libdcfail-4a28dd06a3d4731e.rmeta: src/lib.rs

src/lib.rs:
