/root/repo/target/release/deps/proptests-cda69e6969230cb1.d: tests/proptests.rs

/root/repo/target/release/deps/proptests-cda69e6969230cb1: tests/proptests.rs

tests/proptests.rs:
