/root/repo/target/release/deps/dcfail_model-b3388ac1e6498367.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

/root/repo/target/release/deps/libdcfail_model-b3388ac1e6498367.rlib: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

/root/repo/target/release/deps/libdcfail_model-b3388ac1e6498367.rmeta: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/failure.rs:
crates/model/src/ids.rs:
crates/model/src/interop.rs:
crates/model/src/machine.rs:
crates/model/src/telemetry.rs:
crates/model/src/ticket.rs:
crates/model/src/time.rs:
crates/model/src/topology.rs:
