/root/repo/target/release/deps/repro-68ae049d8b063049.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-68ae049d8b063049: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
