/root/repo/target/release/deps/dcfail_audit-367d34cda4fc4e28.d: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

/root/repo/target/release/deps/libdcfail_audit-367d34cda4fc4e28.rlib: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

/root/repo/target/release/deps/libdcfail_audit-367d34cda4fc4e28.rmeta: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/import.rs:
crates/audit/src/raw.rs:
crates/audit/src/report.rs:
crates/audit/src/rules.rs:
