/root/repo/target/release/deps/determinism-7d82c5c07c6e30c2.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-7d82c5c07c6e30c2: tests/determinism.rs

tests/determinism.rs:
