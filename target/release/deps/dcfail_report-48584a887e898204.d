/root/repo/target/release/deps/dcfail_report-48584a887e898204.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/release/deps/libdcfail_report-48584a887e898204.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/release/deps/libdcfail_report-48584a887e898204.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/extras.rs:
crates/report/src/runners.rs:
crates/report/src/summary.rs:
crates/report/src/table.rs:
