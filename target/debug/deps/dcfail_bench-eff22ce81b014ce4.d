/root/repo/target/debug/deps/dcfail_bench-eff22ce81b014ce4.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/libdcfail_bench-eff22ce81b014ce4.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/libdcfail_bench-eff22ce81b014ce4.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
