/root/repo/target/debug/deps/dcfail-3da1593a82ac8cc7.d: src/lib.rs

/root/repo/target/debug/deps/dcfail-3da1593a82ac8cc7: src/lib.rs

src/lib.rs:
