/root/repo/target/debug/deps/proptest-79bcddbf29e0aadc.d: crates/tickets/tests/proptest.rs

/root/repo/target/debug/deps/proptest-79bcddbf29e0aadc: crates/tickets/tests/proptest.rs

crates/tickets/tests/proptest.rs:
