/root/repo/target/debug/deps/dcfail-e0b98a1b81412731.d: src/lib.rs

/root/repo/target/debug/deps/libdcfail-e0b98a1b81412731.rlib: src/lib.rs

/root/repo/target/debug/deps/libdcfail-e0b98a1b81412731.rmeta: src/lib.rs

src/lib.rs:
