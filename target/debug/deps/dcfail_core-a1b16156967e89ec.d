/root/repo/target/debug/deps/dcfail_core-a1b16156967e89ec.d: crates/core/src/lib.rs crates/core/src/age.rs crates/core/src/availability.rs crates/core/src/capacity.rs crates/core/src/class_mix.rs crates/core/src/consolidation.rs crates/core/src/curve.rs crates/core/src/followon.rs crates/core/src/interfailure.rs crates/core/src/onoff.rs crates/core/src/prediction.rs crates/core/src/rates.rs crates/core/src/recurrence.rs crates/core/src/repair.rs crates/core/src/spatial.rs crates/core/src/temporal.rs crates/core/src/usage.rs crates/core/src/whatif.rs

/root/repo/target/debug/deps/dcfail_core-a1b16156967e89ec: crates/core/src/lib.rs crates/core/src/age.rs crates/core/src/availability.rs crates/core/src/capacity.rs crates/core/src/class_mix.rs crates/core/src/consolidation.rs crates/core/src/curve.rs crates/core/src/followon.rs crates/core/src/interfailure.rs crates/core/src/onoff.rs crates/core/src/prediction.rs crates/core/src/rates.rs crates/core/src/recurrence.rs crates/core/src/repair.rs crates/core/src/spatial.rs crates/core/src/temporal.rs crates/core/src/usage.rs crates/core/src/whatif.rs

crates/core/src/lib.rs:
crates/core/src/age.rs:
crates/core/src/availability.rs:
crates/core/src/capacity.rs:
crates/core/src/class_mix.rs:
crates/core/src/consolidation.rs:
crates/core/src/curve.rs:
crates/core/src/followon.rs:
crates/core/src/interfailure.rs:
crates/core/src/onoff.rs:
crates/core/src/prediction.rs:
crates/core/src/rates.rs:
crates/core/src/recurrence.rs:
crates/core/src/repair.rs:
crates/core/src/spatial.rs:
crates/core/src/temporal.rs:
crates/core/src/usage.rs:
crates/core/src/whatif.rs:
