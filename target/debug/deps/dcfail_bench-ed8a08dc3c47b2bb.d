/root/repo/target/debug/deps/dcfail_bench-ed8a08dc3c47b2bb.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_bench-ed8a08dc3c47b2bb.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
