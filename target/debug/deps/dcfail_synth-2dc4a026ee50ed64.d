/root/repo/target/debug/deps/dcfail_synth-2dc4a026ee50ed64.d: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/debug/deps/dcfail_synth-2dc4a026ee50ed64: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

crates/synth/src/lib.rs:
crates/synth/src/config.rs:
crates/synth/src/hazard.rs:
crates/synth/src/incidents.rs:
crates/synth/src/lifecycle.rs:
crates/synth/src/population.rs:
crates/synth/src/scenario.rs:
crates/synth/src/telemetry_gen.rs:
crates/synth/src/tickets_gen.rs:
