/root/repo/target/debug/deps/proptest-2b3205b2f104081a.d: crates/model/tests/proptest.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2b3205b2f104081a.rmeta: crates/model/tests/proptest.rs Cargo.toml

crates/model/tests/proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
