/root/repo/target/debug/deps/proptest-54b7ca07f154ae1f.d: crates/stats/tests/proptest.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-54b7ca07f154ae1f.rmeta: crates/stats/tests/proptest.rs Cargo.toml

crates/stats/tests/proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
