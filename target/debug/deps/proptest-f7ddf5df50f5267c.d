/root/repo/target/debug/deps/proptest-f7ddf5df50f5267c.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f7ddf5df50f5267c.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
