/root/repo/target/debug/deps/serde_derive-7d4665c8e15c3661.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-7d4665c8e15c3661: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
