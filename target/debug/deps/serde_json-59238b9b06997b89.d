/root/repo/target/debug/deps/serde_json-59238b9b06997b89.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-59238b9b06997b89: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
