/root/repo/target/debug/deps/dcfail_audit-55503e3c61783924.d: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libdcfail_audit-55503e3c61783924.rlib: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libdcfail_audit-55503e3c61783924.rmeta: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/import.rs:
crates/audit/src/raw.rs:
crates/audit/src/report.rs:
crates/audit/src/rules.rs:
