/root/repo/target/debug/deps/dcfail_synth-38ee9dc74b74bb40.d: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/debug/deps/libdcfail_synth-38ee9dc74b74bb40.rlib: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/debug/deps/libdcfail_synth-38ee9dc74b74bb40.rmeta: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

crates/synth/src/lib.rs:
crates/synth/src/config.rs:
crates/synth/src/config_audit.rs:
crates/synth/src/hazard.rs:
crates/synth/src/incidents.rs:
crates/synth/src/lifecycle.rs:
crates/synth/src/population.rs:
crates/synth/src/scenario.rs:
crates/synth/src/telemetry_gen.rs:
crates/synth/src/tickets_gen.rs:
