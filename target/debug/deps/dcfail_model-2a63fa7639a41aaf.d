/root/repo/target/debug/deps/dcfail_model-2a63fa7639a41aaf.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

/root/repo/target/debug/deps/libdcfail_model-2a63fa7639a41aaf.rlib: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

/root/repo/target/debug/deps/libdcfail_model-2a63fa7639a41aaf.rmeta: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/failure.rs:
crates/model/src/ids.rs:
crates/model/src/interop.rs:
crates/model/src/machine.rs:
crates/model/src/telemetry.rs:
crates/model/src/ticket.rs:
crates/model/src/time.rs:
crates/model/src/topology.rs:
