/root/repo/target/debug/deps/dcfail_tickets-90ecea083fdea013.d: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

/root/repo/target/debug/deps/libdcfail_tickets-90ecea083fdea013.rlib: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

/root/repo/target/debug/deps/libdcfail_tickets-90ecea083fdea013.rmeta: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

crates/tickets/src/lib.rs:
crates/tickets/src/classify.rs:
crates/tickets/src/extract.rs:
crates/tickets/src/store.rs:
