/root/repo/target/debug/deps/dcfail_synth-62e6b857241603da.d: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/debug/deps/dcfail_synth-62e6b857241603da: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

crates/synth/src/lib.rs:
crates/synth/src/config.rs:
crates/synth/src/config_audit.rs:
crates/synth/src/hazard.rs:
crates/synth/src/incidents.rs:
crates/synth/src/lifecycle.rs:
crates/synth/src/population.rs:
crates/synth/src/scenario.rs:
crates/synth/src/telemetry_gen.rs:
crates/synth/src/tickets_gen.rs:
