/root/repo/target/debug/deps/repro-76f687f0c1b28cdd.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-76f687f0c1b28cdd: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
