/root/repo/target/debug/deps/proptest-469cc52b868d39b7.d: crates/stats/tests/proptest.rs

/root/repo/target/debug/deps/proptest-469cc52b868d39b7: crates/stats/tests/proptest.rs

crates/stats/tests/proptest.rs:
