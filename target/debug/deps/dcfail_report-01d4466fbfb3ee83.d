/root/repo/target/debug/deps/dcfail_report-01d4466fbfb3ee83.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_report-01d4466fbfb3ee83.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs Cargo.toml

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/extras.rs:
crates/report/src/runners.rs:
crates/report/src/summary.rs:
crates/report/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
