/root/repo/target/debug/deps/dcfail-562f0e010ece45a4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail-562f0e010ece45a4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
