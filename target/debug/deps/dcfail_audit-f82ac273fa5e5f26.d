/root/repo/target/debug/deps/dcfail_audit-f82ac273fa5e5f26.d: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_audit-f82ac273fa5e5f26.rmeta: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/import.rs:
crates/audit/src/raw.rs:
crates/audit/src/report.rs:
crates/audit/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
