/root/repo/target/debug/deps/dcfail_synth-f0f0b00c935dbbc0.d: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/debug/deps/libdcfail_synth-f0f0b00c935dbbc0.rlib: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

/root/repo/target/debug/deps/libdcfail_synth-f0f0b00c935dbbc0.rmeta: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs

crates/synth/src/lib.rs:
crates/synth/src/config.rs:
crates/synth/src/hazard.rs:
crates/synth/src/incidents.rs:
crates/synth/src/lifecycle.rs:
crates/synth/src/population.rs:
crates/synth/src/scenario.rs:
crates/synth/src/telemetry_gen.rs:
crates/synth/src/tickets_gen.rs:
