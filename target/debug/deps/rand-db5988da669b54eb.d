/root/repo/target/debug/deps/rand-db5988da669b54eb.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-db5988da669b54eb: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
