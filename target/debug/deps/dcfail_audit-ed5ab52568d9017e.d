/root/repo/target/debug/deps/dcfail_audit-ed5ab52568d9017e.d: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/dcfail_audit-ed5ab52568d9017e: crates/audit/src/lib.rs crates/audit/src/import.rs crates/audit/src/raw.rs crates/audit/src/report.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/import.rs:
crates/audit/src/raw.rs:
crates/audit/src/report.rs:
crates/audit/src/rules.rs:
