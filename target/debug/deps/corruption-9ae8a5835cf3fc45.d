/root/repo/target/debug/deps/corruption-9ae8a5835cf3fc45.d: crates/audit/tests/corruption.rs

/root/repo/target/debug/deps/corruption-9ae8a5835cf3fc45: crates/audit/tests/corruption.rs

crates/audit/tests/corruption.rs:
