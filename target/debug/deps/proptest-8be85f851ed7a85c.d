/root/repo/target/debug/deps/proptest-8be85f851ed7a85c.d: crates/tickets/tests/proptest.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-8be85f851ed7a85c.rmeta: crates/tickets/tests/proptest.rs Cargo.toml

crates/tickets/tests/proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
