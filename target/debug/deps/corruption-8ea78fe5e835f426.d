/root/repo/target/debug/deps/corruption-8ea78fe5e835f426.d: crates/audit/tests/corruption.rs Cargo.toml

/root/repo/target/debug/deps/libcorruption-8ea78fe5e835f426.rmeta: crates/audit/tests/corruption.rs Cargo.toml

crates/audit/tests/corruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
