/root/repo/target/debug/deps/proptests-4c9f3680e000707b.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-4c9f3680e000707b.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
