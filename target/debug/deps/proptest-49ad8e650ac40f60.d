/root/repo/target/debug/deps/proptest-49ad8e650ac40f60.d: crates/model/tests/proptest.rs

/root/repo/target/debug/deps/proptest-49ad8e650ac40f60: crates/model/tests/proptest.rs

crates/model/tests/proptest.rs:
