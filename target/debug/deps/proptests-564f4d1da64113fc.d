/root/repo/target/debug/deps/proptests-564f4d1da64113fc.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-564f4d1da64113fc: tests/proptests.rs

tests/proptests.rs:
