/root/repo/target/debug/deps/pipeline-55587dbbca2e5a0d.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-55587dbbca2e5a0d: tests/pipeline.rs

tests/pipeline.rs:
