/root/repo/target/debug/deps/dcfail-23e29c454f85e0b9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail-23e29c454f85e0b9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
