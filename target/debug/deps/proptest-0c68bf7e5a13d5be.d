/root/repo/target/debug/deps/proptest-0c68bf7e5a13d5be.d: crates/synth/tests/proptest.rs

/root/repo/target/debug/deps/proptest-0c68bf7e5a13d5be: crates/synth/tests/proptest.rs

crates/synth/tests/proptest.rs:
