/root/repo/target/debug/deps/proptest-5023d2358508407c.d: crates/synth/tests/proptest.rs

/root/repo/target/debug/deps/proptest-5023d2358508407c: crates/synth/tests/proptest.rs

crates/synth/tests/proptest.rs:
