/root/repo/target/debug/deps/proptest-83ca61b4bae0d18f.d: crates/tickets/tests/proptest.rs

/root/repo/target/debug/deps/proptest-83ca61b4bae0d18f: crates/tickets/tests/proptest.rs

crates/tickets/tests/proptest.rs:
