/root/repo/target/debug/deps/criterion-d2052b76c9a87c10.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-d2052b76c9a87c10: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
