/root/repo/target/debug/deps/pipeline-3cd846482df3f568.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-3cd846482df3f568: tests/pipeline.rs

tests/pipeline.rs:
