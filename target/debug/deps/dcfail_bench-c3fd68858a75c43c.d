/root/repo/target/debug/deps/dcfail_bench-c3fd68858a75c43c.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/libdcfail_bench-c3fd68858a75c43c.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/libdcfail_bench-c3fd68858a75c43c.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
