/root/repo/target/debug/deps/proptest-3e17c5c1ce12baee.d: crates/synth/tests/proptest.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-3e17c5c1ce12baee.rmeta: crates/synth/tests/proptest.rs Cargo.toml

crates/synth/tests/proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
