/root/repo/target/debug/deps/stats-571a9528a81ff5a7.d: crates/bench/benches/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstats-571a9528a81ff5a7.rmeta: crates/bench/benches/stats.rs Cargo.toml

crates/bench/benches/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
