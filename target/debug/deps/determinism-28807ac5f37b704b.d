/root/repo/target/debug/deps/determinism-28807ac5f37b704b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-28807ac5f37b704b: tests/determinism.rs

tests/determinism.rs:
