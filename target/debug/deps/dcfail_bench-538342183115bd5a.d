/root/repo/target/debug/deps/dcfail_bench-538342183115bd5a.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/dcfail_bench-538342183115bd5a: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
