/root/repo/target/debug/deps/dcfail_model-fce2aa2f6e29b28e.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_model-fce2aa2f6e29b28e.rmeta: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/failure.rs:
crates/model/src/ids.rs:
crates/model/src/interop.rs:
crates/model/src/machine.rs:
crates/model/src/telemetry.rs:
crates/model/src/ticket.rs:
crates/model/src/time.rs:
crates/model/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
