/root/repo/target/debug/deps/serde-84018a88ed7ab5ef.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-84018a88ed7ab5ef.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
