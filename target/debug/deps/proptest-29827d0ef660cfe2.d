/root/repo/target/debug/deps/proptest-29827d0ef660cfe2.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-29827d0ef660cfe2: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
