/root/repo/target/debug/deps/criterion-f6a937de02037c66.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f6a937de02037c66.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f6a937de02037c66.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
