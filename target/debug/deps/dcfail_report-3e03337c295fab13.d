/root/repo/target/debug/deps/dcfail_report-3e03337c295fab13.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/debug/deps/libdcfail_report-3e03337c295fab13.rlib: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/debug/deps/libdcfail_report-3e03337c295fab13.rmeta: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/extras.rs:
crates/report/src/runners.rs:
crates/report/src/summary.rs:
crates/report/src/table.rs:
