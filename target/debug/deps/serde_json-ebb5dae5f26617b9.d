/root/repo/target/debug/deps/serde_json-ebb5dae5f26617b9.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ebb5dae5f26617b9.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ebb5dae5f26617b9.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
