/root/repo/target/debug/deps/repro-fcb1901e35ac7883.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-fcb1901e35ac7883: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
