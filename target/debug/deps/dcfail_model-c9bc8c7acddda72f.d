/root/repo/target/debug/deps/dcfail_model-c9bc8c7acddda72f.d: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

/root/repo/target/debug/deps/dcfail_model-c9bc8c7acddda72f: crates/model/src/lib.rs crates/model/src/dataset.rs crates/model/src/failure.rs crates/model/src/ids.rs crates/model/src/interop.rs crates/model/src/machine.rs crates/model/src/telemetry.rs crates/model/src/ticket.rs crates/model/src/time.rs crates/model/src/topology.rs

crates/model/src/lib.rs:
crates/model/src/dataset.rs:
crates/model/src/failure.rs:
crates/model/src/ids.rs:
crates/model/src/interop.rs:
crates/model/src/machine.rs:
crates/model/src/telemetry.rs:
crates/model/src/ticket.rs:
crates/model/src/time.rs:
crates/model/src/topology.rs:
