/root/repo/target/debug/deps/dcfail_bench-b34fa144e20adaff.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_bench-b34fa144e20adaff.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
