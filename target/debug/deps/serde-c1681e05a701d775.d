/root/repo/target/debug/deps/serde-c1681e05a701d775.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-c1681e05a701d775: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
