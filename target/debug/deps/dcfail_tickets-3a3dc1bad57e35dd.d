/root/repo/target/debug/deps/dcfail_tickets-3a3dc1bad57e35dd.d: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

/root/repo/target/debug/deps/dcfail_tickets-3a3dc1bad57e35dd: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

crates/tickets/src/lib.rs:
crates/tickets/src/classify.rs:
crates/tickets/src/extract.rs:
crates/tickets/src/store.rs:
