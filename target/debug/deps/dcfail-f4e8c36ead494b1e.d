/root/repo/target/debug/deps/dcfail-f4e8c36ead494b1e.d: src/lib.rs

/root/repo/target/debug/deps/libdcfail-f4e8c36ead494b1e.rlib: src/lib.rs

/root/repo/target/debug/deps/libdcfail-f4e8c36ead494b1e.rmeta: src/lib.rs

src/lib.rs:
