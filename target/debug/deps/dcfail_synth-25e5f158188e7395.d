/root/repo/target/debug/deps/dcfail_synth-25e5f158188e7395.d: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_synth-25e5f158188e7395.rmeta: crates/synth/src/lib.rs crates/synth/src/config.rs crates/synth/src/config_audit.rs crates/synth/src/hazard.rs crates/synth/src/incidents.rs crates/synth/src/lifecycle.rs crates/synth/src/population.rs crates/synth/src/scenario.rs crates/synth/src/telemetry_gen.rs crates/synth/src/tickets_gen.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/config.rs:
crates/synth/src/config_audit.rs:
crates/synth/src/hazard.rs:
crates/synth/src/incidents.rs:
crates/synth/src/lifecycle.rs:
crates/synth/src/population.rs:
crates/synth/src/scenario.rs:
crates/synth/src/telemetry_gen.rs:
crates/synth/src/tickets_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
