/root/repo/target/debug/deps/tickets-6d89bd4b68bb86a6.d: crates/bench/benches/tickets.rs Cargo.toml

/root/repo/target/debug/deps/libtickets-6d89bd4b68bb86a6.rmeta: crates/bench/benches/tickets.rs Cargo.toml

crates/bench/benches/tickets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
