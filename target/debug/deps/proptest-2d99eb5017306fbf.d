/root/repo/target/debug/deps/proptest-2d99eb5017306fbf.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2d99eb5017306fbf.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2d99eb5017306fbf.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
