/root/repo/target/debug/deps/dcfail-4b524077398451e9.d: src/lib.rs

/root/repo/target/debug/deps/dcfail-4b524077398451e9: src/lib.rs

src/lib.rs:
