/root/repo/target/debug/deps/dcfail_tickets-ad102ba203b1d45c.d: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_tickets-ad102ba203b1d45c.rmeta: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs Cargo.toml

crates/tickets/src/lib.rs:
crates/tickets/src/classify.rs:
crates/tickets/src/extract.rs:
crates/tickets/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
