/root/repo/target/debug/deps/dcfail_report-f4e6d6c67da5245d.d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

/root/repo/target/debug/deps/dcfail_report-f4e6d6c67da5245d: crates/report/src/lib.rs crates/report/src/experiments.rs crates/report/src/extras.rs crates/report/src/runners.rs crates/report/src/summary.rs crates/report/src/table.rs

crates/report/src/lib.rs:
crates/report/src/experiments.rs:
crates/report/src/extras.rs:
crates/report/src/runners.rs:
crates/report/src/summary.rs:
crates/report/src/table.rs:
