/root/repo/target/debug/deps/serde-a2caa34f88f70fda.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a2caa34f88f70fda.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a2caa34f88f70fda.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
