/root/repo/target/debug/deps/proptests-146a67d4458a7aae.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-146a67d4458a7aae: tests/proptests.rs

tests/proptests.rs:
