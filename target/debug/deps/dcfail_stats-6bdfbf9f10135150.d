/root/repo/target/debug/deps/dcfail_stats-6bdfbf9f10135150.d: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libdcfail_stats-6bdfbf9f10135150.rmeta: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/binning.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/corr.rs:
crates/stats/src/dist.rs:
crates/stats/src/empirical.rs:
crates/stats/src/fit.rs:
crates/stats/src/gof.rs:
crates/stats/src/kmeans.rs:
crates/stats/src/rng.rs:
crates/stats/src/special.rs:
crates/stats/src/survival.rs:
crates/stats/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
