/root/repo/target/debug/deps/repro-39a6e2d49f122548.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-39a6e2d49f122548: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
