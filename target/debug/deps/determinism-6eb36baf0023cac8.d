/root/repo/target/debug/deps/determinism-6eb36baf0023cac8.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6eb36baf0023cac8: tests/determinism.rs

tests/determinism.rs:
