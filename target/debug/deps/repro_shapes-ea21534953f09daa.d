/root/repo/target/debug/deps/repro_shapes-ea21534953f09daa.d: tests/repro_shapes.rs Cargo.toml

/root/repo/target/debug/deps/librepro_shapes-ea21534953f09daa.rmeta: tests/repro_shapes.rs Cargo.toml

tests/repro_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
