/root/repo/target/debug/deps/repro_shapes-939582f4086a672c.d: tests/repro_shapes.rs

/root/repo/target/debug/deps/repro_shapes-939582f4086a672c: tests/repro_shapes.rs

tests/repro_shapes.rs:
