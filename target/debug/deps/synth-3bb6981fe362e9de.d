/root/repo/target/debug/deps/synth-3bb6981fe362e9de.d: crates/bench/benches/synth.rs Cargo.toml

/root/repo/target/debug/deps/libsynth-3bb6981fe362e9de.rmeta: crates/bench/benches/synth.rs Cargo.toml

crates/bench/benches/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
