/root/repo/target/debug/deps/rand-dfaebb5d0b8ffd54.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-dfaebb5d0b8ffd54.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-dfaebb5d0b8ffd54.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
