/root/repo/target/debug/deps/dcfail_tickets-43c1351347ea6720.d: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

/root/repo/target/debug/deps/dcfail_tickets-43c1351347ea6720: crates/tickets/src/lib.rs crates/tickets/src/classify.rs crates/tickets/src/extract.rs crates/tickets/src/store.rs

crates/tickets/src/lib.rs:
crates/tickets/src/classify.rs:
crates/tickets/src/extract.rs:
crates/tickets/src/store.rs:
