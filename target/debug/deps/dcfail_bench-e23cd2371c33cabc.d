/root/repo/target/debug/deps/dcfail_bench-e23cd2371c33cabc.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/dcfail_bench-e23cd2371c33cabc: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
