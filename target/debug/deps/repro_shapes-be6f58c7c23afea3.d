/root/repo/target/debug/deps/repro_shapes-be6f58c7c23afea3.d: tests/repro_shapes.rs

/root/repo/target/debug/deps/repro_shapes-be6f58c7c23afea3: tests/repro_shapes.rs

tests/repro_shapes.rs:
