/root/repo/target/debug/deps/dcfail_stats-aeebd0b33a96c769.d: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs

/root/repo/target/debug/deps/libdcfail_stats-aeebd0b33a96c769.rlib: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs

/root/repo/target/debug/deps/libdcfail_stats-aeebd0b33a96c769.rmeta: crates/stats/src/lib.rs crates/stats/src/binning.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/dist.rs crates/stats/src/empirical.rs crates/stats/src/fit.rs crates/stats/src/gof.rs crates/stats/src/kmeans.rs crates/stats/src/rng.rs crates/stats/src/special.rs crates/stats/src/survival.rs crates/stats/src/text.rs

crates/stats/src/lib.rs:
crates/stats/src/binning.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/corr.rs:
crates/stats/src/dist.rs:
crates/stats/src/empirical.rs:
crates/stats/src/fit.rs:
crates/stats/src/gof.rs:
crates/stats/src/kmeans.rs:
crates/stats/src/rng.rs:
crates/stats/src/special.rs:
crates/stats/src/survival.rs:
crates/stats/src/text.rs:
