/root/repo/target/debug/examples/ticket_triage-3c681c1040e1980c.d: examples/ticket_triage.rs

/root/repo/target/debug/examples/ticket_triage-3c681c1040e1980c: examples/ticket_triage.rs

examples/ticket_triage.rs:
