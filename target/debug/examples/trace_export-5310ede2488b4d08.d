/root/repo/target/debug/examples/trace_export-5310ede2488b4d08.d: examples/trace_export.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_export-5310ede2488b4d08.rmeta: examples/trace_export.rs Cargo.toml

examples/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
