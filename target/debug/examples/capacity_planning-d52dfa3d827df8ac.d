/root/repo/target/debug/examples/capacity_planning-d52dfa3d827df8ac.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-d52dfa3d827df8ac: examples/capacity_planning.rs

examples/capacity_planning.rs:
