/root/repo/target/debug/examples/reliability_report-6b03f338f548f323.d: examples/reliability_report.rs

/root/repo/target/debug/examples/reliability_report-6b03f338f548f323: examples/reliability_report.rs

examples/reliability_report.rs:
