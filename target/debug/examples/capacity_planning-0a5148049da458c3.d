/root/repo/target/debug/examples/capacity_planning-0a5148049da458c3.d: examples/capacity_planning.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_planning-0a5148049da458c3.rmeta: examples/capacity_planning.rs Cargo.toml

examples/capacity_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
