/root/repo/target/debug/examples/failure_prediction-b37b3ac902b5ad97.d: examples/failure_prediction.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_prediction-b37b3ac902b5ad97.rmeta: examples/failure_prediction.rs Cargo.toml

examples/failure_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
