/root/repo/target/debug/examples/capacity_planning-41f60c5039e95f77.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-41f60c5039e95f77: examples/capacity_planning.rs

examples/capacity_planning.rs:
