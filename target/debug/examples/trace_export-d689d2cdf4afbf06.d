/root/repo/target/debug/examples/trace_export-d689d2cdf4afbf06.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-d689d2cdf4afbf06: examples/trace_export.rs

examples/trace_export.rs:
