/root/repo/target/debug/examples/trace_export-033504d9543ee700.d: examples/trace_export.rs

/root/repo/target/debug/examples/trace_export-033504d9543ee700: examples/trace_export.rs

examples/trace_export.rs:
