/root/repo/target/debug/examples/reliability_report-3a006763ec3d84cf.d: examples/reliability_report.rs Cargo.toml

/root/repo/target/debug/examples/libreliability_report-3a006763ec3d84cf.rmeta: examples/reliability_report.rs Cargo.toml

examples/reliability_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
