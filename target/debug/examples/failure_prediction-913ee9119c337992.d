/root/repo/target/debug/examples/failure_prediction-913ee9119c337992.d: examples/failure_prediction.rs

/root/repo/target/debug/examples/failure_prediction-913ee9119c337992: examples/failure_prediction.rs

examples/failure_prediction.rs:
