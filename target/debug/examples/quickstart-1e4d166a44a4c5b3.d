/root/repo/target/debug/examples/quickstart-1e4d166a44a4c5b3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1e4d166a44a4c5b3: examples/quickstart.rs

examples/quickstart.rs:
