/root/repo/target/debug/examples/reliability_report-b94a10fdbbec9c82.d: examples/reliability_report.rs

/root/repo/target/debug/examples/reliability_report-b94a10fdbbec9c82: examples/reliability_report.rs

examples/reliability_report.rs:
