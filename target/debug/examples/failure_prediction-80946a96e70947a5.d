/root/repo/target/debug/examples/failure_prediction-80946a96e70947a5.d: examples/failure_prediction.rs

/root/repo/target/debug/examples/failure_prediction-80946a96e70947a5: examples/failure_prediction.rs

examples/failure_prediction.rs:
