/root/repo/target/debug/examples/ticket_triage-c094ac112ef636c1.d: examples/ticket_triage.rs Cargo.toml

/root/repo/target/debug/examples/libticket_triage-c094ac112ef636c1.rmeta: examples/ticket_triage.rs Cargo.toml

examples/ticket_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
