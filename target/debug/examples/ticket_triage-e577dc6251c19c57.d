/root/repo/target/debug/examples/ticket_triage-e577dc6251c19c57.d: examples/ticket_triage.rs

/root/repo/target/debug/examples/ticket_triage-e577dc6251c19c57: examples/ticket_triage.rs

examples/ticket_triage.rs:
