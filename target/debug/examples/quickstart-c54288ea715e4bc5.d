/root/repo/target/debug/examples/quickstart-c54288ea715e4bc5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c54288ea715e4bc5: examples/quickstart.rs

examples/quickstart.rs:
