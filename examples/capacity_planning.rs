//! Capacity planning with the analysis toolkit: a downstream use the paper's
//! introduction motivates — pick VM configurations and placement policies
//! that minimize failure exposure.
//!
//! The scenario: an operator must place a new 3-tier service (web, app, db)
//! and wants to know, from the estate's failure history,
//!
//! 1. whether to provision few large VMs or many small ones,
//! 2. whether disks should be consolidated into fewer volumes, and
//! 3. which consolidation level to target on the hosting platforms.
//!
//! ```text
//! cargo run --example capacity_planning --release
//! ```

use dcfail::analysis::{capacity, consolidation, interfailure};
use dcfail::model::prelude::*;
use dcfail::synth::Scenario;

fn main() {
    let dataset = Scenario::paper().seed(7).scale(0.5).build().into_dataset();
    println!(
        "history: {} machines, {} failures over one year\n",
        dataset.machines().len(),
        dataset.events().len()
    );

    // --- 1. vCPU sizing -----------------------------------------------------
    let by_cpu = capacity::rate_by_cpu(&dataset, MachineKind::Vm);
    println!("failure rate by vCPU count:");
    for p in &by_cpu.points {
        println!(
            "  {:>2} vCPU: {:.4} /week  ({} machine-weeks)",
            p.label, p.mean, p.machine_weeks
        );
    }
    let small = by_cpu.mean_of("2").unwrap_or(f64::NAN);
    let large = by_cpu.mean_of("8").unwrap_or(f64::NAN);
    // A service needing 8 vCPUs: one 8-vCPU VM vs four 2-vCPU VMs. The
    // relevant exposure is P(at least one replica down), which for small
    // weekly rates is ≈ the summed rate.
    println!(
        "  -> 8 vCPU as 1x8: {:.4}/wk; as 4x2 (any replica): {:.4}/wk{}\n",
        large,
        4.0 * small,
        if large < 4.0 * small {
            " — prefer one large VM for availability-of-all"
        } else {
            " — prefer small replicas"
        }
    );

    // --- 2. disk layout -----------------------------------------------------
    let by_disks = capacity::rate_by_disk_count(&dataset);
    println!("failure rate by number of virtual disks:");
    for p in &by_disks.points {
        println!("  {:>2} disks: {:.4} /week", p.label, p.mean);
    }
    if let (Some(one), Some(many)) = (by_disks.mean_of("1"), by_disks.mean_of("6")) {
        println!(
            "  -> consolidating 6 disks into 1 volume cuts the rate {:.1}x\n",
            many / one
        );
    }

    // --- 3. placement -------------------------------------------------------
    let by_level = consolidation::rate_by_consolidation(&dataset);
    println!("failure rate by consolidation level of the hosting platform:");
    for p in &by_level.points {
        println!("  level {:>2}: {:.4} /week", p.label, p.mean);
    }
    let best = by_level
        .points
        .iter()
        .min_by(|a, b| a.mean.total_cmp(&b.mean))
        .expect("curve has points");
    println!(
        "  -> target well-filled platforms (level {} measured lowest at {:.4}/wk)\n",
        best.label, best.mean
    );

    // --- 4. expected time between incidents for the chosen design -----------
    if let Some(a) = interfailure::analyze(&dataset, MachineKind::Vm) {
        let fit = a.fits.best();
        println!(
            "per-VM inter-failure model: {} ({}), mean {:.0} days",
            fit.dist.family(),
            fit.dist.params(),
            fit.dist.as_dist().mean()
        );
        // Three replicas: expected time until *some* replica fails.
        println!(
            "  -> for a 3-replica tier, expect a replica failure roughly every {:.0} days",
            fit.dist.as_dist().mean() / 3.0
        );
    }
}
