//! Week-ahead failure prediction: turn the paper's findings (failures recur,
//! lemons exist, subsystems differ) into an operational early-warning score
//! and evaluate it honestly with a walk-forward protocol.
//!
//! ```text
//! cargo run --example failure_prediction --release
//! ```

use dcfail::analysis::prediction::{evaluate, score_week, PredictorWeights};
use dcfail::synth::Scenario;

fn main() {
    let dataset = Scenario::paper().seed(21).scale(0.5).build().into_dataset();
    println!(
        "history: {} machines, {} failures over one year\n",
        dataset.machines().len(),
        dataset.events().len()
    );

    // Evaluate the default predictor, walking forward from week 8.
    let weights = PredictorWeights::default();
    let report = evaluate(&dataset, 8, &weights).expect("failures exist");
    println!("walk-forward evaluation (weeks 8..52):");
    println!("  machine-weeks scored : {}", report.observations);
    println!("  failing machine-weeks: {}", report.positives);
    println!("  AUC                  : {:.3}", report.auc);
    println!(
        "  top-decile watchlist catches {:.0}% of next-week failures ({:.1}x random)",
        100.0 * report.recall_at_top_decile,
        report.lift_at_top_decile
    );

    // Ablate each feature to see where the signal lives.
    println!("\nfeature ablations (AUC):");
    let variants: [(&str, PredictorWeights); 3] = [
        (
            "recency only",
            PredictorWeights {
                per_prior_failure: 0.0,
                base_rate: 0.0,
                ..weights
            },
        ),
        (
            "failure count only",
            PredictorWeights {
                recency_1w: 0.0,
                recency_4w: 0.0,
                base_rate: 0.0,
                ..weights
            },
        ),
        (
            "base rate only",
            PredictorWeights {
                recency_1w: 0.0,
                recency_4w: 0.0,
                per_prior_failure: 0.0,
                ..weights
            },
        ),
    ];
    for (name, w) in variants {
        if let Some(r) = evaluate(&dataset, 8, &w) {
            println!("  {name:<20} {:.3}", r.auc);
        }
    }

    // Show this week's top-5 watchlist.
    let mut scores = score_week(&dataset, 40, &weights);
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nweek-40 watchlist (top 5):");
    for (machine, score) in scores.iter().take(5) {
        let m = dataset.machine(*machine);
        let history = dataset.events_for(*machine).count();
        println!(
            "  {} [{} {}]: score {:.3}, {} failures so far",
            machine,
            m.kind(),
            dataset.topology().subsystems()[m.subsystem().index()].name(),
            score,
            history
        );
    }
}
