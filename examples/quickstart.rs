//! Quickstart: simulate a small datacenter estate, run the headline
//! analyses, print the findings.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use dcfail::analysis::{interfailure, rates, recurrence, repair};
use dcfail::model::prelude::*;
use dcfail::synth::Scenario;

fn main() {
    // 1. Simulate one observation year at 10% of the paper's population.
    let dataset = Scenario::paper().seed(42).scale(0.1).build().into_dataset();
    println!(
        "simulated {} machines, {} incidents, {} crash events, {} tickets\n",
        dataset.machines().len(),
        dataset.incidents().len(),
        dataset.events().len(),
        dataset.tickets().len()
    );

    // 2. Who fails more — PMs or VMs? (paper: PMs, by ~40%)
    let fig2 = rates::weekly_failure_rates(&dataset);
    println!(
        "weekly failure rate: PM {:.4} vs VM {:.4}  (PM/VM = {:.2}x)",
        fig2.all_pm.mean,
        fig2.all_vm.mean,
        fig2.all_pm.mean / fig2.all_vm.mean
    );

    // 3. Are failures memoryless? (paper: recurrent ≈ 35–42× random)
    let t5 = recurrence::table5(&dataset);
    if let (Some(pm), Some(vm)) = (t5.pm[0], t5.vm[0]) {
        println!(
            "recurrent vs random (weekly): PM {:.2}/{:.4} = {:.0}x, VM {:.2}/{:.4} = {:.0}x",
            pm.recurrent,
            pm.random,
            pm.ratio().unwrap_or(0.0),
            vm.recurrent,
            vm.random,
            vm.ratio().unwrap_or(0.0)
        );
    }

    // 4. How long do repairs take? (paper: 38.5 h PM vs 19.6 h VM)
    for kind in MachineKind::ALL {
        if let Some(r) = repair::analyze(&dataset, kind) {
            println!(
                "{kind} repairs: mean {:.1} h, best fit {} ({})",
                r.mean_hours,
                r.fits.best().dist.family(),
                r.fits.best().dist.params()
            );
        }
    }

    // 5. Inter-failure times and their distribution.
    for kind in MachineKind::ALL {
        if let Some(a) = interfailure::analyze(&dataset, kind) {
            println!(
                "{kind} inter-failure: mean {:.1} d over {} gaps, best fit {}",
                a.mean_days,
                a.gaps_days.len(),
                a.fits.best().dist.family()
            );
        }
    }
}
