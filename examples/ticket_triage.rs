//! Ticket triage: run the paper's classification pipeline on a raw ticket
//! database — extract the crash tickets, cluster them with TF-IDF + k-means,
//! and report accuracy the way the paper does (87% vs manual labels).
//!
//! ```text
//! cargo run --example ticket_triage --release
//! ```

use dcfail::model::prelude::*;
use dcfail::stats::rng::StreamRng;
use dcfail::synth::Scenario;
use dcfail::tickets::classify::{classify, manual_label, PipelineConfig};
use dcfail::tickets::extract::{extract_crash_tickets, reconstruct_incidents};
use dcfail::tickets::store::TicketStore;

fn main() {
    let dataset = Scenario::paper().seed(99).scale(0.4).build().into_dataset();
    let store = TicketStore::from_tickets(dataset.tickets().to_vec());
    println!("ticket database: {} tickets", store.len());

    // Step 1: find the crash tickets in the haystack.
    let (crash_ids, report) = extract_crash_tickets(&store);
    println!(
        "crash extraction: {} extracted, precision {:.1}%, recall {:.1}%",
        crash_ids.len(),
        100.0 * report.precision(),
        100.0 * report.recall()
    );

    // Step 2: classify them by root cause.
    let crash: Vec<&Ticket> = store.tickets().iter().filter(|t| t.is_crash()).collect();
    let mut rng = StreamRng::new(1).fork("triage");
    let classification = classify(&crash, PipelineConfig::default(), &mut rng);
    println!(
        "k-means pipeline: {:.1}% agreement with manual labels (paper: 87%)",
        100.0 * classification.accuracy_vs_manual()
    );
    if let Some(acc) = classification.accuracy_vs_truth() {
        println!(
            "                  {:.1}% agreement with ground truth",
            100.0 * acc
        );
    }

    // Step 3: class mix of the triaged queue (manually-checked labels —
    // the operational output; raw k-means in parentheses).
    println!("\ntriaged queue by class (checked / raw k-means):");
    for class in FailureClass::ALL {
        let checked = classification
            .checked_labels()
            .values()
            .filter(|&&c| c == class)
            .count() as f64
            / classification.checked_labels().len() as f64;
        println!(
            "  {:<7} {:>5.1}%  ({:>5.1}%)",
            class.label(),
            100.0 * checked,
            100.0 * classification.share(class)
        );
    }

    // Step 4: show the pipeline at work on a few fresh tickets.
    println!("\nsample triage decisions:");
    for t in crash.iter().take(5) {
        println!(
            "  [{}] \"{} / {}\"\n      manual: {:<7} k-means: {:<7} truth: {}",
            t.id(),
            t.description(),
            t.resolution(),
            manual_label(t.description(), t.resolution()).label(),
            classification
                .label(t.id())
                .map_or("-", FailureClass::label),
            t.true_class().map_or("-", FailureClass::label),
        );
    }

    // Step 5: reconstruct incidents from ticket co-occurrence.
    let incidents = reconstruct_incidents(&store, MINUTE * 30);
    let multi = incidents.iter().filter(|g| g.size() >= 2).count();
    println!(
        "\nreconstructed {} incidents from ticket timing; {} involve several servers \
         (simulator ground truth: {})",
        incidents.len(),
        multi,
        dataset.incidents().len()
    );
}
