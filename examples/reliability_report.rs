//! Full reliability report: regenerates every table and figure of the paper
//! from a fresh simulation and prints them in order.
//!
//! ```text
//! cargo run --example reliability_report --release -- [scale] [seed]
//! ```
//!
//! Defaults: scale 0.25, seed 42 (scale 1.0 reproduces the paper's full
//! ~10K-host estate; use the `repro` binary in `dcfail-bench` for CSV
//! export and classifier re-runs).

use dcfail::report::experiments::{run_all, RunConfig};
use dcfail::synth::Scenario;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map_or(0.25, |s| {
        s.parse().expect("scale must be a number in (0, 1]")
    });
    let seed: u64 = args
        .next()
        .map_or(42, |s| s.parse().expect("seed must be an integer"));

    eprintln!("simulating paper scenario at scale {scale} (seed {seed}) ...");
    let dataset = Scenario::paper()
        .seed(seed)
        .scale(scale)
        .build()
        .into_dataset();
    eprintln!(
        "dataset: {} machines, {} crash events, {} tickets\n",
        dataset.machines().len(),
        dataset.events().len(),
        dataset.tickets().len()
    );

    for (id, rendered) in run_all(&dataset, &RunConfig::with_seed(seed)) {
        println!("==== [{id}] {} ====", rendered.title);
        println!("{}", rendered.text);
    }
}
