//! Trace export/import: save a simulated failure study to JSON and re-run an
//! analysis on the reloaded copy.
//!
//! The paper's pipeline mines persistent ticket and monitoring databases;
//! the dcfail equivalent is a serializable [`FailureDataset`] so analyses
//! are re-runnable on saved traces (and real traces, massaged into the same
//! schema, can be analyzed with the identical code).
//!
//! ```text
//! cargo run --example trace_export --release -- [out.json]
//! ```

use dcfail::analysis::rates;
use dcfail::model::dataset::FailureDataset;
use dcfail::model::interop;
use dcfail::synth::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/dcfail-trace.json".to_string());

    // Simulate and export.
    let dataset = Scenario::paper().seed(5).scale(0.05).build().into_dataset();
    let json = serde_json::to_string(&dataset)?;
    std::fs::write(&path, &json)?;
    println!(
        "exported {} machines / {} events / {} tickets to {path} ({:.1} MiB)",
        dataset.machines().len(),
        dataset.events().len(),
        dataset.tickets().len(),
        json.len() as f64 / (1024.0 * 1024.0)
    );

    // Re-import and verify the roundtrip is lossless.
    let reloaded: FailureDataset = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    assert_eq!(reloaded, dataset, "JSON roundtrip must be lossless");
    println!("reloaded trace matches the original bit-for-bit");

    // Analyses run identically on the reloaded copy.
    let original = rates::weekly_failure_rates(&dataset);
    let replayed = rates::weekly_failure_rates(&reloaded);
    assert_eq!(original, replayed);
    println!(
        "replayed analysis agrees: PM weekly rate {:.4}, VM {:.4}",
        replayed.all_pm.mean, replayed.all_vm.mean
    );

    // Flat-CSV interop: the format external failure traces arrive in.
    let machines_csv = interop::machines_to_csv(&dataset);
    let events_csv = interop::events_to_csv(&dataset);
    let imported = interop::dataset_from_csv(&machines_csv, &events_csv, dataset.horizon())?;
    let from_csv = rates::weekly_failure_rates(&imported);
    println!(
        "CSV import ({} machine rows, {} event rows): PM rate {:.4} — matches: {}",
        machines_csv.lines().count() - 1,
        events_csv.lines().count() - 1,
        from_csv.all_pm.mean,
        (from_csv.all_pm.mean - original.all_pm.mean).abs() < 1e-12
    );
    Ok(())
}
