//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the `proptest!`
//! macro family (`prop_assert!`, `prop_assert_eq!`, `prop_assume!`), a
//! [`strategy::Strategy`] trait with range / collection / option / regex-string
//! strategies, `any::<bool>()`, and [`test_runner::ProptestConfig`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! each test function derives a deterministic RNG seed from its own name, so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

/// Test harness configuration and deterministic RNG.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic test RNG (xoshiro256++ seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Creates an RNG seeded deterministically from a test name.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = [0_u64; 4];
            for word in &mut state {
                hash = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = hash;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            Self { state }
        }

        /// Returns the next random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }

        /// Returns a uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1_u64 << 53) as f64)
        }

        /// Returns a uniform integer in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    ///
    /// Real proptest strategies produce shrinkable value trees; this vendored
    /// version generates plain values with no shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// Strategy producing a constant value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `Arbitrary` types and the `any` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy generating values via [`Arbitrary`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: ::std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`, mirroring `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: ::std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length sampled from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet<T>` with a target size sampled from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set, so retry with a generous cap.
            let mut attempts = 0_usize;
            while set.len() < target && attempts < target * 1000 + 1000 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates sets whose elements come from `element` and whose size is
    /// drawn uniformly from `size` (best effort when the element domain is
    /// too small to reach the target).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Bias toward Some, like real proptest's default weight.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Generates `Option` values, mostly `Some`, from the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// String strategies driven by a small regex subset.
pub mod string {
    use std::fmt;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from parsing an unsupported or malformed pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    #[derive(Debug, Clone)]
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a simple regex.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let span = (atom.max - atom.min + 1) as u64;
                let count = atom.min + rng.below(span) as usize;
                for _ in 0..count {
                    let idx = rng.below(atom.choices.len() as u64) as usize;
                    out.push(atom.choices[idx]);
                }
            }
            out
        }
    }

    /// Builds a string strategy from a regex-like pattern.
    ///
    /// Supports a pragmatic subset: literal characters, character classes
    /// `[a-z0-9_-]` (ranges plus literals; `-` literal when first or last),
    /// and quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] for malformed classes/quantifiers or characters
    /// outside the supported subset.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    set
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).ok_or_else(|| Error {
                        message: "trailing backslash in pattern".to_string(),
                    })?;
                    i += 1;
                    vec![c]
                }
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(Error {
                        message: format!("unsupported regex construct `{}`", chars[i]),
                    })
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i)?;
            i = next;
            atoms.push(Atom { choices, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
        let mut set = Vec::new();
        let mut first = true;
        while i < chars.len() {
            match chars[i] {
                ']' if !first => return Ok((set, i + 1)),
                '\\' => {
                    let c = *chars.get(i + 1).ok_or_else(|| Error {
                        message: "trailing backslash in class".to_string(),
                    })?;
                    set.push(c);
                    i += 2;
                }
                c => {
                    // `a-z` range form, unless `-` is the last class char.
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&e| e != ']')
                    {
                        let end = chars[i + 2];
                        if end < c {
                            return Err(Error {
                                message: format!("invalid class range `{c}-{end}`"),
                            });
                        }
                        set.extend(c..=end);
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
            }
            first = false;
        }
        Err(Error {
            message: "unterminated character class".to_string(),
        })
    }

    fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), Error> {
        match chars.get(i) {
            Some('?') => Ok((0, 1, i + 1)),
            Some('*') => Ok((0, 8, i + 1)),
            Some('+') => Ok((1, 8, i + 1)),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|off| i + off)
                    .ok_or_else(|| Error {
                        message: "unterminated quantifier".to_string(),
                    })?;
                let body: String = chars[i + 1..close].iter().collect();
                let parse = |s: &str| {
                    s.trim().parse::<usize>().map_err(|_| Error {
                        message: format!("invalid quantifier `{{{body}}}`"),
                    })
                };
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let n = parse(&body)?;
                        (n, n)
                    }
                };
                if max < min {
                    return Err(Error {
                        message: format!("invalid quantifier `{{{body}}}`"),
                    });
                }
                Ok((min, max, close + 1))
            }
            _ => Ok((1, 1, i)),
        }
    }
}

/// Short aliases matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}

/// The common imports property tests pull in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs each contained test function over many randomly generated cases.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items (doc comments and outer
/// attributes allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

/// Internal recursive muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => { assert_eq!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => { assert_eq!($lhs, $rhs, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => { assert_ne!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => { assert_ne!($lhs, $rhs, $($fmt)*) };
}

/// Skips the current random case when a precondition does not hold.
///
/// Expands to `continue` targeting the per-case loop, so it may only appear
/// directly inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
