//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Good enough to exercise the hot paths and print per-iteration
//! timings; not a replacement for real statistics when comparing runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id directly from a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, preventing its result from being
    /// optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and iteration calibration: aim for samples of ~10ms, capped so
    // slow benchmarks still finish quickly.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iterations = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        let mut sample = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut sample);
        let per = sample.elapsed / u32::try_from(iterations).unwrap_or(u32::MAX);
        best = best.min(per);
        total += per;
    }
    let mean = total / u32::try_from(sample_size.max(1)).unwrap_or(1);
    println!("bench {name}: mean {mean:?}/iter, best {best:?}/iter ({sample_size} samples x {iterations} iters)");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
