//! Minimal vendored stand-in for the `rand` crate.
//!
//! Provides the small API surface this workspace uses: the [`RngCore`] /
//! [`SeedableRng`] traits, [`Error`], and [`rngs::SmallRng`] implemented as
//! xoshiro256++ (the same algorithm family rand 0.8's 64-bit `SmallRng`
//! uses) seeded via SplitMix64. Statistical quality matches the upstream
//! generator class; the exact output stream is NOT guaranteed to match
//! upstream rand bit-for-bit, and no workspace test depends on golden values
//! — only on run-to-run determinism.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations. The vendored generators are
/// infallible, so this is never actually produced.
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for Error {}

/// Core random number generation trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an error.
    ///
    /// # Errors
    ///
    /// Never fails for the vendored generators; the `Result` exists for
    /// signature compatibility with upstream rand.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array for the vendored generators).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way upstream rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0_u64; 4];
            for (i, word) in state.iter_mut().enumerate() {
                let mut bytes = [0_u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if state.iter().all(|&w| w == 0) {
                state = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { state }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_for_same_seed() {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = SmallRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(2);
            let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same < 10);
        }

        #[test]
        fn fill_bytes_covers_partial_chunks() {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut buf = [0_u8; 13];
            rng.fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        }

        #[test]
        fn zero_seed_is_not_stuck() {
            let mut rng = SmallRng::from_seed([0_u8; 32]);
            assert_ne!(rng.next_u64(), 0);
        }
    }
}
