//! Minimal vendored stand-in for `serde_json`.
//!
//! Renders and parses JSON against the vendored `serde` crate's [`Value`]
//! data model. Supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Floating-point numbers are rendered
//! with Rust's shortest round-trip formatting so `from_str(&to_string(x))`
//! reproduces `x` bit-exactly for finite floats.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Number, Serialize, Value};

/// Error raised while rendering or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err.message())
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float (JSON has no
/// representation for NaN or infinity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = value.to_value();
    let mut out = String::new();
    write_value(&tree, &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to a human-readable, two-space-indented JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = value.to_value();
    let mut out = String::new();
    write_value(&tree, &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the parsed value does not
/// match the shape of `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree does not match the shape of `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    value: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out)?,
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                write_newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1)?;
            }
            if !entries.is_empty() {
                write_newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_number(number: Number, out: &mut String) -> Result<(), Error> {
    match number {
        Number::I(i) => out.push_str(&i.to_string()),
        Number::U(u) => out.push_str(&u.to_string()),
        Number::F(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` is Rust's shortest round-trip float formatting; it always
            // includes a `.0` or exponent, so integers and floats stay distinct.
            out.push_str(&format!("{f:?}"));
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.consume_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.consume_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let escape = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match escape {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect a following `\uXXXX` low half.
                    if self.peek() != Some(b'\\') {
                        return Err(Error::new("unpaired surrogate in string"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(Error::new("unpaired surrogate in string"));
                    }
                    self.pos += 1;
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate in string"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                let c = char::from_u32(code)
                    .ok_or_else(|| Error::new("invalid unicode escape in string"))?;
                out.push(c);
            }
            other => {
                return Err(Error::new(format!(
                    "invalid escape `\\{}` in string",
                    other as char
                )))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number at byte {start}")))
    }
}
