//! Minimal vendored stand-in for the `serde` crate.
//!
//! This workspace builds in fully offline environments, so the real serde
//! cannot be fetched from crates.io. This crate implements the subset of the
//! serde surface the workspace actually uses — `#[derive(Serialize,
//! Deserialize)]` with the `transparent`, `from`, `try_from` and `into`
//! container attributes, plus JSON round-trips through the sibling vendored
//! `serde_json` — on top of a simplified tree-shaped data model ([`Value`])
//! instead of serde's streaming visitor architecture.
//!
//! The public trait names match real serde so workspace code (`use
//! serde::{Deserialize, Serialize};`) compiles unchanged. Swapping the real
//! serde back in requires no source changes, only Cargo metadata.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree value: the interchange format between [`Serialize`],
/// [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Entries keep insertion order so struct output is stable.
    Object(Vec<(String, Value)>),
}

/// A JSON number: signed, unsigned or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer (used for negative integers).
    I(i64),
    /// Unsigned integer.
    U(u64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced while converting a [`Value`] into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Num(Number::U(u)) => Ok(*u),
                    Value::Num(Number::I(i)) if *i >= 0 => Ok(*i as u64),
                    other => Err(type_error("unsigned integer", other)),
                }?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Num(Number::U(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = u64::from_value(value)?;
        usize::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} overflows usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(i64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Num(Number::I(i)) => Ok(*i),
                    Value::Num(Number::U(u)) => {
                        i64::try_from(*u).map_err(|_| Error::custom("integer overflows i64"))
                    }
                    other => Err(type_error("integer", other)),
                }?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Num(Number::I(*self as i64))
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(value)?;
        isize::try_from(raw).map_err(|_| Error::custom(format!("integer {raw} overflows isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Num(Number::F(f)) => Ok(*f),
            Value::Num(Number::I(i)) => Ok(*i as f64),
            Value::Num(Number::U(u)) => Ok(*u as f64),
            other => Err(type_error("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(type_error("two-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(type_error("three-element array", other)),
        }
    }
}

/// Renders a serialized key for use as a JSON object key. JSON keys must be
/// strings, so integer keys (e.g. newtype machine ids) are rendered in
/// decimal, mirroring real `serde_json` behaviour.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::Num(Number::U(u)) => Ok(u.to_string()),
        Value::Num(Number::I(i)) => Ok(i.to_string()),
        other => Err(type_error("string or integer map key", other)),
    }
}

/// Parses a JSON object key back into a [`Value`] a key type can consume.
fn key_from_string(key: &str) -> Value {
    if let Ok(u) = key.parse::<u64>() {
        return Value::Num(Number::U(u));
    }
    if let Ok(i) = key.parse::<i64>() {
        return Value::Num(Number::I(i));
    }
    Value::Str(key.to_string())
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("map keys must serialize to strings or integers");
                (key, v.to_value())
            })
            .collect();
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value())
                    .expect("map keys must serialize to strings or integers");
                (key, v.to_value())
            })
            .collect();
        // Sort for deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Runtime helpers used by code generated by the vendored `serde_derive`.
/// Not part of the public API contract.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetches a struct field from an object value, with a serde-style
    /// "missing field" error.
    pub fn field<T: Deserialize>(value: &Value, ty: &str, name: &str) -> Result<T, Error> {
        match value.get(name) {
            Some(v) => T::from_value(v)
                .map_err(|e| Error::custom(format!("invalid field `{ty}.{name}`: {e}"))),
            None => Err(Error::custom(format!("missing field `{name}` in `{ty}`"))),
        }
    }

    /// Expects an object value (struct or enum body).
    pub fn as_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match value {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::custom(format!(
                "expected object for `{ty}`, found {}",
                other.kind()
            ))),
        }
    }
}
