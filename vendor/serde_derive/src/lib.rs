//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! Value-based data model in the sibling `serde` crate, without depending on
//! `syn`/`quote` (which are equally unavailable offline). The derive input is
//! parsed directly from the raw `proc_macro::TokenStream` and the generated
//! impls are assembled as source strings.
//!
//! Supported shapes: non-generic named structs, tuple structs, and enums with
//! unit / tuple / struct variants (externally tagged, matching `serde_json`).
//! Supported container attributes: `#[serde(transparent)]`,
//! `#[serde(from = "T")]`, `#[serde(try_from = "T")]`, `#[serde(into = "T")]`.
//! Anything else is ignored, mirroring how this workspace uses real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    from: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    kind: ItemKind,
}

/// Derives `serde::Serialize` (vendored Value model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("vendored serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (vendored Value model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("vendored serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut attrs = ContainerAttrs::default();

    // Leading container attributes (doc comments, derives, serde config).
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        if let Some(TokenTree::Group(group)) = iter.next() {
            parse_container_attr(group.stream(), &mut attrs);
        }
    }

    // Skip visibility and find the `struct` / `enum` keyword.
    let mut is_enum = false;
    loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" {
                    break;
                }
                if word == "enum" {
                    is_enum = true;
                    break;
                }
            }
            Some(_) => {}
            None => panic!("vendored serde_derive: expected `struct` or `enum`"),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("vendored serde_derive: expected item name"),
    };

    let kind = loop {
        match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                if is_enum {
                    break ItemKind::Enum(parse_variants(group.stream()));
                }
                break ItemKind::Struct(parse_named_fields(group.stream()));
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                break ItemKind::Tuple(count_tuple_fields(group.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic types")
            }
            Some(_) => {}
            None => panic!("vendored serde_derive: expected item body"),
        }
    };

    Item { name, attrs, kind }
}

fn parse_container_attr(stream: TokenStream, attrs: &mut ContainerAttrs) {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(group)) = iter.next() else {
        return;
    };
    let mut inner = group.stream().into_iter().peekable();
    while let Some(token) = inner.next() {
        let TokenTree::Ident(key) = token else {
            continue;
        };
        let key = key.to_string();
        let value = match inner.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                inner.next();
                match inner.next() {
                    Some(TokenTree::Literal(lit)) => Some(unquote(&lit.to_string())),
                    _ => None,
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("transparent", _) => attrs.transparent = true,
            ("from", Some(path)) => attrs.from = Some(path),
            ("try_from", Some(path)) => attrs.try_from = Some(path),
            ("into", Some(path)) => attrs.into = Some(path),
            _ => {}
        }
    }
}

fn unquote(literal: &str) -> String {
    literal.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Field attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Visibility.
        while matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        fields.push(name.to_string());
        skip_past_type(&mut iter);
    }
    fields
}

/// Skips the `: Type` part of a field declaration up to (and including) the
/// separating comma. Commas nested inside `<...>` generics are not
/// separators, so angle-bracket depth is tracked; `->` is disambiguated from
/// a closing `>`.
fn skip_past_type(iter: &mut impl Iterator<Item = TokenTree>) {
    let mut depth = 0_i32;
    let mut prev_dash = false;
    for token in iter {
        let mut this_dash = false;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                ',' if depth == 0 => return,
                '-' => this_dash = true,
                _ => {}
            }
        }
        prev_dash = this_dash;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0_i32;
    let mut segment_has_tokens = false;
    let mut prev_dash = false;
    for token in stream {
        let mut this_dash = false;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1,
                ',' if depth == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                    prev_dash = false;
                    continue;
                }
                '-' => this_dash = true,
                _ => {}
            }
        }
        prev_dash = this_dash;
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Variant attributes (e.g. `#[default]`, doc comments).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let kind = VariantKind::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                kind
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let kind = VariantKind::Struct(parse_named_fields(g.stream()));
                iter.next();
                kind
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
        // Skip discriminants etc. up to the separating comma.
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_variables, clippy::all, clippy::pedantic, clippy::unwrap_used)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.attrs.into {
        format!(
            "let proxy: {into} = <{into} as ::core::convert::From<{name}>>::from(::core::clone::Clone::clone(self)); \
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &item.kind {
            ItemKind::Struct(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            }
            ItemKind::Struct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            ItemKind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            ItemKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            ItemKind::Enum(variants) => gen_enum_serialize(variants),
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_enum_serialize(variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for variant in variants {
        let v = &variant.name;
        let arm = match &variant.kind {
            VariantKind::Unit => format!(
                "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
            ),
            VariantKind::Tuple(1) => format!(
                "Self::{v}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(f0))])"
            ),
            VariantKind::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                    .collect();
                format!(
                    "Self::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(::std::vec![{}]))])",
                    binders.join(", "),
                    items.join(", ")
                )
            }
            VariantKind::Struct(fields) => {
                let binders = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "Self::{v} {{ {binders} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(::std::vec![{}]))])",
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.attrs.from {
        format!(
            "let proxy: {from} = ::serde::Deserialize::from_value(value)?; \
             ::core::result::Result::Ok(<Self as ::core::convert::From<{from}>>::from(proxy))"
        )
    } else if let Some(try_from) = &item.attrs.try_from {
        format!(
            "let proxy: {try_from} = ::serde::Deserialize::from_value(value)?; \
             <Self as ::core::convert::TryFrom<{try_from}>>::try_from(proxy)\
             .map_err(|e| ::serde::Error::custom(::std::string::ToString::to_string(&e)))"
        )
    } else {
        match &item.kind {
            ItemKind::Struct(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!(
                    "::core::result::Result::Ok(Self {{ {}: ::serde::Deserialize::from_value(value)? }})",
                    fields[0]
                )
            }
            ItemKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__private::field(value, \"{name}\", \"{f}\")?"))
                    .collect();
                format!(
                    "let _ = ::serde::__private::as_object(value, \"{name}\")?; \
                     ::core::result::Result::Ok(Self {{ {} }})",
                    inits.join(", ")
                )
            }
            ItemKind::Tuple(1) => {
                "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))"
                    .to_string()
            }
            ItemKind::Tuple(n) => gen_tuple_deserialize(name, *n, "value", "Self"),
            ItemKind::Enum(variants) => gen_enum_deserialize(name, variants),
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_tuple_deserialize(name: &str, arity: usize, value_expr: &str, ctor: &str) -> String {
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "match {value_expr} {{ \
           ::serde::Value::Array(items) if items.len() == {arity} => \
             ::core::result::Result::Ok({ctor}({})), \
           other => ::core::result::Result::Err(::serde::Error::custom(::std::format!(\
             \"expected {arity}-element array for `{name}`, found {{}}\", other.kind()))), \
         }}",
        items.join(", ")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                unit_arms.push(format!("\"{v}\" => ::core::result::Result::Ok(Self::{v})"));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push(format!(
                    "\"{v}\" => ::core::result::Result::Ok(Self::{v}(::serde::Deserialize::from_value(body)?))"
                ));
            }
            VariantKind::Tuple(n) => {
                let inner = gen_tuple_deserialize(
                    &format!("{name}::{v}"),
                    *n,
                    "body",
                    &format!("Self::{v}"),
                );
                tagged_arms.push(format!("\"{v}\" => {inner}"));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::__private::field(body, \"{name}::{v}\", \"{f}\")?")
                    })
                    .collect();
                tagged_arms.push(format!(
                    "\"{v}\" => {{ let _ = ::serde::__private::as_object(body, \"{name}::{v}\")?; \
                     ::core::result::Result::Ok(Self::{v} {{ {} }}) }}",
                    inits.join(", ")
                ));
            }
        }
    }
    unit_arms.push(format!(
        "other => ::core::result::Result::Err(::serde::Error::custom(::std::format!(\
         \"unknown unit variant `{{}}` of `{name}`\", other)))"
    ));
    tagged_arms.push(format!(
        "other => ::core::result::Result::Err(::serde::Error::custom(::std::format!(\
         \"unknown variant `{{}}` of `{name}`\", other)))"
    ));
    format!(
        "match value {{ \
           ::serde::Value::Str(tag) => match tag.as_str() {{ {} }}, \
           ::serde::Value::Object(entries) if entries.len() == 1 => {{ \
             let (tag, body) = &entries[0]; \
             match tag.as_str() {{ {} }} \
           }}, \
           other => ::core::result::Result::Err(::serde::Error::custom(::std::format!(\
             \"expected enum `{name}`, found {{}}\", other.kind()))), \
         }}",
        unit_arms.join(", "),
        tagged_arms.join(", ")
    )
}
