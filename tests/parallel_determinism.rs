//! Thread-count independence: the deterministic parallel runtime's contract
//! is that `DCFAIL_THREADS` can never change any output, only wall-clock
//! time. These tests pin the thread count via the test override and compare
//! whole datasets and rendered reports across 1, 2, and 8 workers.
//!
//! The override is process-wide, but that is safe even with tests running
//! concurrently in one binary: the invariant under test is precisely that
//! the thread count cannot affect results, so a concurrent flip from
//! another test thread cannot introduce a difference.

#![allow(clippy::unwrap_used)]

use dcfail::model::dataset::FailureDataset;
use dcfail::par;
use dcfail::stats::rng::StreamRng;
use dcfail::synth::Scenario;
use dcfail::tickets::classify::{apply_to_dataset, PipelineConfig};

fn build_with_threads(threads: usize) -> FailureDataset {
    par::set_thread_override(Some(threads));
    let ds = Scenario::paper()
        .seed(21)
        .scale(0.05)
        .build()
        .into_dataset();
    par::set_thread_override(None);
    ds
}

#[test]
fn scenario_build_is_thread_count_independent() {
    let baseline = build_with_threads(1);
    for threads in [2, 8] {
        assert_eq!(
            build_with_threads(threads),
            baseline,
            "dataset diverged at {threads} threads"
        );
    }
}

#[test]
fn reports_are_thread_count_independent() {
    let ds = build_with_threads(1);
    // `run_all` covers the paper artifacts and the extras (24 reports).
    let render = |threads: usize| {
        par::set_thread_override(Some(threads));
        let config = dcfail::report::experiments::RunConfig::with_seed(21);
        let experiments: Vec<String> = dcfail::report::experiments::run_all(&ds, &config)
            .into_iter()
            .map(|(id, r)| format!("{id}:{}", r.text))
            .collect();
        par::set_thread_override(None);
        experiments
    };
    assert_eq!(render(1), render(8));
}

#[test]
fn classification_is_thread_count_independent() {
    let classify = |threads: usize| {
        let mut ds = build_with_threads(threads);
        par::set_thread_override(Some(threads));
        let mut rng = StreamRng::new(0x15 ^ 0x7ea).fork("test.classify");
        let comparison = apply_to_dataset(&mut ds, PipelineConfig::default(), &mut rng);
        par::set_thread_override(None);
        (ds, comparison.accuracy_vs_manual().to_bits())
    };
    assert_eq!(classify(1), classify(8));
}
