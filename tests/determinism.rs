//! Determinism and serialization guarantees: every experiment is
//! reproducible bit-for-bit from `(seed, scale)` and every dataset survives
//! a JSON roundtrip.

#![allow(clippy::unwrap_used)]

use dcfail::analysis::rates;
use dcfail::model::dataset::FailureDataset;
use dcfail::report::experiments::{run, ExperimentId, RunConfig};
use dcfail::synth::{EffectToggles, Scenario};

#[test]
fn same_seed_same_dataset_same_reports() {
    let a = Scenario::paper()
        .seed(77)
        .scale(0.04)
        .build()
        .into_dataset();
    let b = Scenario::paper()
        .seed(77)
        .scale(0.04)
        .build()
        .into_dataset();
    assert_eq!(a, b);
    let config = RunConfig::default();
    for id in [ExperimentId::Fig2, ExperimentId::Table5, ExperimentId::Fig7] {
        assert_eq!(
            run(id, &a, &config).text,
            run(id, &b, &config).text,
            "{id} diverged"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = Scenario::paper()
        .seed(77)
        .scale(0.04)
        .build()
        .into_dataset();
    let b = Scenario::paper()
        .seed(78)
        .scale(0.04)
        .build()
        .into_dataset();
    assert_ne!(a, b);
}

#[test]
fn json_roundtrip_is_lossless_and_analyzable() {
    let ds = Scenario::paper().seed(5).scale(0.03).build().into_dataset();
    let json = serde_json::to_string(&ds).expect("serialize");
    let back: FailureDataset = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, ds);
    assert_eq!(
        rates::weekly_failure_rates(&ds),
        rates::weekly_failure_rates(&back)
    );
}

#[test]
fn effect_toggles_change_the_dataset() {
    let all = Scenario::paper().seed(9).scale(0.04).build().into_dataset();
    let none = Scenario::paper()
        .seed(9)
        .scale(0.04)
        .effects(EffectToggles::none())
        .build()
        .into_dataset();
    assert_ne!(all, none);
    // Machines/topology are identical — only the failure processes change.
    assert_eq!(all.machines(), none.machines());
    assert_eq!(all.topology(), none.topology());
}

#[test]
fn scaled_scenarios_nest_sensibly() {
    // Rates should be scale-invariant (within noise): the 4% estate and the
    // 12% estate measure a similar PM weekly rate.
    let small = Scenario::paper()
        .seed(13)
        .scale(0.06)
        .build()
        .into_dataset();
    let large = Scenario::paper()
        .seed(13)
        .scale(0.24)
        .build()
        .into_dataset();
    let rs = rates::weekly_failure_rates(&small).all_pm.mean;
    let rl = rates::weekly_failure_rates(&large).all_pm.mean;
    assert!(
        (rs / rl) > 0.5 && (rs / rl) < 2.0,
        "scale-dependent rates: {rs} vs {rl}"
    );
}
