//! Property-based tests over the cross-crate invariants.

#![allow(clippy::unwrap_used)]

use dcfail::analysis::{rates, recurrence, spatial};
use dcfail::model::prelude::*;
use dcfail::stats::dist::{ContinuousDist, Gamma, LogNormal, Weibull};
use dcfail::stats::empirical::{quantile, Ecdf};
use dcfail::stats::fit::{fit_gamma, fit_lognormal, fit_weibull};
use dcfail::stats::rng::StreamRng;
use dcfail::synth::Scenario;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed/scale combination yields an internally consistent dataset.
    #[test]
    fn simulated_datasets_are_consistent(seed in 0u64..1000, scale in 0.01f64..0.06) {
        let ds = Scenario::paper().seed(seed).scale(scale).build().into_dataset();
        // Events sorted by time and inside the horizon.
        for pair in ds.events().windows(2) {
            prop_assert!(pair[0].at() <= pair[1].at());
        }
        for ev in ds.events() {
            prop_assert!(ds.horizon().contains(ev.at()));
            prop_assert!(!ev.repair().is_negative());
            // Every event's ticket agrees on machine and timestamps.
            let t = ds.ticket(ev.ticket());
            prop_assert_eq!(t.machine(), ev.machine());
            prop_assert_eq!(t.opened_at(), ev.at());
        }
        // Incident sizes equal the per-incident event counts.
        let mut per_incident = vec![0usize; ds.incidents().len()];
        for ev in ds.events() {
            per_incident[ev.incident().index()] += 1;
        }
        for inc in ds.incidents() {
            prop_assert_eq!(per_incident[inc.id().index()], inc.size());
        }
        // Probabilities are probabilities.
        for kind in MachineKind::ALL {
            if let Some(p) = recurrence::random_weekly_probability(&ds, kind, None) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            if let Some(p) = recurrence::recurrent_probability(&ds, kind, WEEK, None) {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
        // Table VI rows each sum to 100%.
        let t6 = spatial::table6(&ds);
        for row in [t6.both, t6.pm_only, t6.vm_only] {
            prop_assert!((row.zero_pct + row.one_pct + row.two_plus_pct - 100.0).abs() < 1e-6);
        }
        // Rate series always sum back to the event totals.
        for kind in MachineKind::ALL {
            let series = rates::rate_series(&ds, kind, None, rates::Granularity::Week);
            let pop = ds.population(kind, None);
            let reconstructed: f64 = series.iter().sum::<f64>() * pop as f64;
            let expected = ds
                .events()
                .iter()
                .filter(|e| ds.machine(e.machine()).kind() == kind)
                .count() as f64;
            prop_assert!((reconstructed - expected).abs() < 1e-6);
        }
    }

    /// MLE fitting approximately inverts sampling for every family.
    #[test]
    fn fits_recover_parameters(
        shape in 0.5f64..3.0,
        scale in 0.5f64..50.0,
        seed in 0u64..500,
    ) {
        let mut rng = StreamRng::new(seed);
        let n = 4000;

        let gamma = Gamma::new(shape, scale).unwrap();
        let xs: Vec<f64> = (0..n).map(|_| gamma.sample(&mut rng)).collect();
        let fit = fit_gamma(&xs).unwrap();
        prop_assert!((fit.shape() - shape).abs() / shape < 0.25);

        let weibull = Weibull::new(shape, scale).unwrap();
        let xs: Vec<f64> = (0..n).map(|_| weibull.sample(&mut rng)).collect();
        let fit = fit_weibull(&xs).unwrap();
        prop_assert!((fit.shape() - shape).abs() / shape < 0.25);

        let sigma = shape.min(2.0);
        let ln = LogNormal::new(scale.ln(), sigma).unwrap();
        let xs: Vec<f64> = (0..n).map(|_| ln.sample(&mut rng)).collect();
        let fit = fit_lognormal(&xs).unwrap();
        prop_assert!((fit.sigma() - sigma).abs() / sigma < 0.25);
    }

    /// ECDFs are monotone, bounded and consistent with quantiles.
    #[test]
    fn ecdf_invariants(values in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let e = Ecdf::new(&values);
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = 1e6 * i as f64 / 50.0;
            let p = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev);
            prev = p;
        }
        // Quantile of the max is the max; of level 0 is the min.
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        prop_assert!((e.quantile(1.0) - max).abs() < 1e-9);
        prop_assert!((e.quantile(0.0) - min).abs() < 1e-9);
        prop_assert!((quantile(&values, 0.5) - e.quantile(0.5)).abs() < 1e-9);
    }

    /// CDF values of all distributions are proper probabilities and agree
    /// with sampled frequencies.
    #[test]
    fn distribution_cdf_bounds(
        a in 0.3f64..4.0,
        b in 0.3f64..40.0,
        x in 0.0f64..200.0,
    ) {
        let dists: Vec<Box<dyn ContinuousDist>> = vec![
            Box::new(Gamma::new(a, b).unwrap()),
            Box::new(Weibull::new(a, b).unwrap()),
            Box::new(LogNormal::new(b.ln(), a).unwrap()),
        ];
        for d in &dists {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c), "{}: cdf({x}) = {c}", d.family());
            prop_assert!(d.pdf(x) >= 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dataset JSON serialization roundtrips for arbitrary seeds.
    #[test]
    fn serde_roundtrip(seed in 0u64..100) {
        let ds = Scenario::paper().seed(seed).scale(0.015).build().into_dataset();
        let json = serde_json::to_string(&ds).unwrap();
        let back: dcfail::model::dataset::FailureDataset = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, ds);
    }
}
