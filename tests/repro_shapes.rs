//! End-to-end reproduction test: every table and figure of Birke et al.
//! (DSN 2014) must come out of the full pipeline with the paper's *shape* —
//! who wins, by roughly what factor, where the crossovers fall.
//!
//! This is the contract DESIGN.md §3 commits to. The pipeline under test is
//! the real one: simulate the estate at full scale, re-label every event
//! with the TF-IDF + k-means ticket classifier (not the simulator's labels),
//! then run each analysis.

#![allow(clippy::unwrap_used)]

use dcfail::analysis::{
    age, capacity, class_mix, consolidation, interfailure, onoff, rates, recurrence, repair,
    spatial, usage, ClassSource,
};
use dcfail::model::prelude::*;
use dcfail::stats::fit::Family;
use dcfail::stats::rng::StreamRng;
use dcfail::synth::Scenario;
use dcfail::tickets::classify::{apply_to_dataset, PipelineConfig};
use std::sync::OnceLock;

/// Full-scale dataset with events labelled by the real classifier.
fn dataset() -> &'static FailureDataset {
    static DS: OnceLock<FailureDataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut ds = Scenario::paper()
            .seed(20140623)
            .scale(1.0)
            .build()
            .into_dataset();
        let mut rng = StreamRng::new(87).fork("repro.pipeline");
        let classification = apply_to_dataset(&mut ds, PipelineConfig::default(), &mut rng);
        // The pipeline itself must hit the paper's accuracy band.
        assert!(
            classification.accuracy_vs_manual() > 0.80,
            "pipeline accuracy {}",
            classification.accuracy_vs_manual()
        );
        ds
    })
}

#[test]
fn table2_dataset_statistics() {
    let stats = dataset().subsystem_stats();
    assert_eq!(stats.len(), 5);
    // Populations match Table II exactly (scale 1.0).
    assert_eq!(
        stats.iter().map(|s| s.pms).collect::<Vec<_>>(),
        vec![463, 2025, 1114, 717, 810]
    );
    assert_eq!(
        stats.iter().map(|s| s.vms).collect::<Vec<_>>(),
        vec![1320, 52, 1971, 313, 636]
    );
    // Ticket volumes are within the crash-overflow tolerance of Table II.
    let targets = [7079usize, 27577, 50157, 8382, 25940];
    for (s, &target) in stats.iter().zip(&targets) {
        assert!(s.all_tickets >= target);
        assert!(s.all_tickets <= target + s.crash_tickets);
        // Crash tickets are a small share everywhere (paper: 0.85–6.9%).
        assert!(s.crash_pct() < 12.0, "{}: {}%", s.name, s.crash_pct());
    }
    // Sys II: all crash tickets on PMs (no VM crashes all year).
    assert_eq!(stats[1].crash_tickets_vm, 0);
    assert!(stats[1].crash_pm_pct() == 100.0 || stats[1].crash_tickets == 0);
}

#[test]
fn fig1_class_mix_structure() {
    let mix = class_mix::class_mix(dataset(), ClassSource::Reported);
    // "Other" is roughly half of everything (paper: 53%).
    assert!((mix.overall.other_share - 0.53).abs() < 0.10);
    // Software and reboot dominate the classified tickets.
    let shares = mix.overall.classified_shares;
    assert!(shares[FailureClass::Software.index()] > 0.2);
    assert!(shares[FailureClass::Reboot.index()] > 0.2);
    // Sys III has no power failures; Sys V is the power-heavy outlier.
    let power = |i: usize| mix.per_subsystem[i].classified_shares[FailureClass::Power.index()];
    assert!(power(2) < 0.02, "Sys III power share {}", power(2));
    for other in [0, 1, 3] {
        assert!(power(4) > power(other));
    }
}

#[test]
fn fig2_pm_rate_beats_vm_rate_by_forty_percent() {
    let f = rates::weekly_failure_rates(dataset());
    assert!(
        f.all_pm.mean > 0.003 && f.all_pm.mean < 0.008,
        "PM {}",
        f.all_pm.mean
    );
    assert!(
        f.all_vm.mean > 0.0015 && f.all_vm.mean < 0.0055,
        "VM {}",
        f.all_vm.mean
    );
    let ratio = f.all_pm.mean / f.all_vm.mean;
    assert!(ratio > 1.15 && ratio < 2.5, "PM/VM {ratio}");
    // Sys II VMs never fail; Sys IV VMs out-fail its PMs.
    assert!(f.per_subsystem[1].vm.is_none());
    let s4 = &f.per_subsystem[3];
    assert!(s4.vm.unwrap().mean > s4.pm.unwrap().mean);
}

#[test]
fn fig3_interfailure_heavy_tailed_not_memoryless() {
    for kind in MachineKind::ALL {
        let a = interfailure::analyze(dataset(), kind).expect("enough gaps");
        assert_ne!(a.fits.best().dist.family(), Family::Exponential);
        let gamma = a.fits.for_family(Family::Gamma).unwrap();
        let expo = a.fits.for_family(Family::Exponential).unwrap();
        assert!(gamma.log_likelihood > expo.log_likelihood, "{kind}");
        // VM mean gap lands in tens of days (paper: 37.22 d).
        if kind == MachineKind::Vm {
            assert!(
                a.mean_days > 15.0 && a.mean_days < 90.0,
                "VM mean {}",
                a.mean_days
            );
            // The majority of failing VMs fail exactly once (paper: ~60%).
            assert!(
                a.single_failure_fraction > 0.40,
                "{}",
                a.single_failure_fraction
            );
        }
    }
}

#[test]
fn table3_software_gaps_shortest() {
    let t3 = interfailure::table3(dataset(), ClassSource::Truth);
    let op = |c: FailureClass| t3[c.index()].operator.unwrap().mean;
    assert!(op(FailureClass::Software) < op(FailureClass::Hardware));
    assert!(op(FailureClass::Software) < op(FailureClass::Network));
    assert!(op(FailureClass::Software) < op(FailureClass::Power));
}

#[test]
fn fig4_repair_lognormal_and_pm_twice_vm() {
    let pm = repair::analyze(dataset(), MachineKind::Pm).unwrap();
    let vm = repair::analyze(dataset(), MachineKind::Vm).unwrap();
    let ratio = pm.mean_hours / vm.mean_hours;
    assert!(ratio > 1.3 && ratio < 3.5, "repair ratio {ratio}");
    // Log-normal beats Gamma for both kinds (paper's winner).
    for a in [&pm, &vm] {
        let ln = a.fits.for_family(Family::LogNormal).unwrap();
        let gamma = a.fits.for_family(Family::Gamma).unwrap();
        assert!(ln.log_likelihood > gamma.log_likelihood);
    }
}

#[test]
fn table4_power_fast_hardware_slow() {
    let t4 = repair::table4(dataset(), ClassSource::Reported);
    let get = |c: FailureClass| t4[c.index()].unwrap();
    assert!(get(FailureClass::Hardware).mean > get(FailureClass::Reboot).mean);
    assert!(get(FailureClass::Network).mean > get(FailureClass::Power).mean);
    assert!(get(FailureClass::Power).median < get(FailureClass::Reboot).median);
    // Software least variable.
    assert!(get(FailureClass::Software).cv < get(FailureClass::Hardware).cv);
}

#[test]
fn fig5_and_table5_recurrence_ratios() {
    let ds = dataset();
    let pm = recurrence::fig5(ds, MachineKind::Pm).unwrap();
    let vm = recurrence::fig5(ds, MachineKind::Vm).unwrap();
    // Windows grow sublinearly and PM sits above VM.
    for w in [&pm, &vm] {
        assert!(w.day < w.week && w.week < w.month);
        assert!(w.week > 0.5 * w.month);
    }
    assert!(pm.week > vm.week);
    assert!((pm.week - 0.22).abs() < 0.10, "PM weekly {}", pm.week);
    assert!((vm.week - 0.16).abs() < 0.10, "VM weekly {}", vm.week);

    let t5 = recurrence::table5(ds);
    let pm_all = t5.pm[0].unwrap();
    let vm_all = t5.vm[0].unwrap();
    assert!(pm_all.ratio().unwrap() > 10.0);
    assert!(vm_all.ratio().unwrap() > pm_all.ratio().unwrap());
}

#[test]
fn tables_6_and_7_spatial_dependency() {
    let ds = dataset();
    let t6 = spatial::table6(ds);
    assert_eq!(t6.both.zero_pct, 0.0);
    assert!(t6.both.one_pct > 60.0);
    assert!(t6.both.two_plus_pct > 4.0);
    // VMs show the stronger spatial dependency.
    assert!(t6.vm_only.dependent_share() > t6.pm_only.dependent_share());

    let t7 = spatial::table7(ds, ClassSource::Truth);
    let power = t7[FailureClass::Power.index()].unwrap();
    for class in [
        FailureClass::Hardware,
        FailureClass::Network,
        FailureClass::Reboot,
        FailureClass::Software,
    ] {
        assert!(power.mean > t7[class.index()].unwrap().mean);
    }
    assert!(power.mean > 1.5 && power.max >= 5);
}

#[test]
fn fig6_no_bathtub() {
    let a = age::analyze(dataset()).unwrap();
    assert!(
        a.max_diagonal_gap < 0.2,
        "diagonal gap {}",
        a.max_diagonal_gap
    );
    assert!(a.known_age_fraction > 0.55);
}

#[test]
fn fig7_capacity_effects() {
    let ds = dataset();
    // PM CPU: rises toward 16–24, drops at 32/64.
    let pm_cpu = capacity::rate_by_cpu(ds, MachineKind::Pm);
    let low = pm_cpu.mean_of("1").unwrap();
    let peak = pm_cpu.mean_of("24").or(pm_cpu.mean_of("16")).unwrap();
    assert!(peak > 2.0 * low);
    if let Some(big) = pm_cpu.mean_of("32") {
        assert!(big < peak);
    }
    // VM disk count is the strongest VM capacity factor.
    let disks = capacity::rate_by_disk_count(ds);
    let one = disks.mean_of("1").unwrap();
    let many = disks.mean_of("6").or(disks.mean_of("5")).unwrap();
    // Paper reports ~10x; class-blind correlated incidents (box crashes,
    // power) dilute the observable contrast in our reproduction to ~3x.
    assert!(many > 2.5 * one, "disks {many} vs {one}");
    let disk_cap = capacity::rate_by_disk_capacity(ds);
    assert!(disks.dynamic_range().unwrap() > disk_cap.dynamic_range().unwrap());
}

#[test]
fn fig8_usage_effects() {
    let ds = dataset();
    // VM CPU utilization increases the rate; PM decreases over 0–30%.
    let vm = usage::rate_by_cpu_util(ds, MachineKind::Vm);
    let pm = usage::rate_by_cpu_util(ds, MachineKind::Pm);
    let vm_low = vm.mean_of("0-10").unwrap();
    let vm_mid = vm.mean_of("20-30").or(vm.mean_of("10-20")).unwrap();
    assert!(vm_mid > vm_low, "VM {vm_mid} vs {vm_low}");
    let pm_low = pm.mean_of("0-10").unwrap();
    let pm_mid = pm.mean_of("20-30").or(pm.mean_of("10-20")).unwrap();
    assert!(pm_low > pm_mid, "PM {pm_low} vs {pm_mid}");
    // Memory: inverted bathtub for both kinds, PM strongest usage factor.
    for kind in MachineKind::ALL {
        let mem = usage::rate_by_mem_util(ds, kind);
        let low = mem.mean_of("0-10").unwrap();
        let mid = mem.mean_of("30-40").or(mem.mean_of("40-50")).unwrap();
        assert!(mid > low, "{kind} memory {mid} vs {low}");
    }
}

#[test]
fn fig9_consolidation_decreases_rate() {
    let curve = consolidation::rate_by_consolidation(dataset());
    let lone = curve.mean_of("1").or(curve.mean_of("2")).unwrap();
    let packed = curve.mean_of("32").or(curve.mean_of("16")).unwrap();
    assert!(lone > 1.5 * packed, "lone {lone} vs packed {packed}");
    // Population skews to high consolidation.
    let shares = consolidation::vm_share_by_level(dataset());
    let high: f64 = shares
        .iter()
        .filter(|(l, _)| l == "16" || l == "32")
        .map(|&(_, s)| s)
        .sum();
    assert!(high > 0.35, "high-consolidation share {high}");
}

#[test]
fn fig10_onoff_rises_then_flattens() {
    let curve = onoff::rate_by_onoff(dataset());
    let stable = curve.mean_of("0-1").unwrap();
    let cycled = curve.mean_of("1-2").or(curve.mean_of("2-4")).unwrap();
    assert!(cycled > stable, "cycled {cycled} vs stable {stable}");
    let shares = onoff::vm_share_by_onoff(dataset());
    let low = shares.iter().find(|(l, _)| l == "0-1").unwrap().1;
    assert!((low - 0.60).abs() < 0.15, "stable share {low}");
}
