//! Golden pin for the registry's default seed: `RunConfig::default()` must
//! keep meaning seed 42 and keep producing today's bytes. If this test
//! fails after an intentional renderer or estimator change, re-derive the
//! digest with the instructions in `golden_digest`'s failure message.

#![allow(clippy::unwrap_used)]

use dcfail::report::experiments::{run_all, RunConfig, DEFAULT_SEED};
use dcfail::synth::Scenario;

/// FNV-1a over the concatenated `id:text` of every registry report — small
/// enough to pin as a literal, sensitive to any byte of any report.
fn digest(config: &RunConfig) -> u64 {
    let dataset = Scenario::paper()
        .seed(DEFAULT_SEED)
        .scale(0.02)
        .build()
        .into_dataset();
    let mut hash: u64 = 0xcbf29ce484222325;
    for (id, rendered) in run_all(&dataset, config) {
        for byte in format!("{id}:{}\n{:?}\n", rendered.text, rendered.csv).bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

#[test]
fn default_seed_is_42() {
    assert_eq!(DEFAULT_SEED, 42);
    assert_eq!(RunConfig::default().seed, 42);
}

#[test]
fn default_config_matches_explicit_seed_42() {
    assert_eq!(
        digest(&RunConfig::default()),
        digest(&RunConfig::with_seed(42))
    );
}

#[test]
fn golden_digest() {
    let got = digest(&RunConfig::default());
    assert_eq!(
        got, GOLDEN,
        "registry output at the default seed changed: digest {got:#018x} != \
         pinned {GOLDEN:#018x}. If the change is intentional, update GOLDEN \
         in tests/golden_report.rs to the new value."
    );
}

/// Pinned digest of all 24 registry reports at seed 42, scale 0.02.
const GOLDEN: u64 = 0x58aac8966164c50b;
