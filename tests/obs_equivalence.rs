//! Observability equivalence: enabling the `dcfail-obs` collection window
//! can never change analysis output. The metrics layer only reads clocks
//! and bumps counters — it never touches an RNG stream or a data structure
//! the pipeline consumes — so a traced run must render bit-identically to
//! an untraced one, at any thread count.
//!
//! The collection window is process-global and exclusive, so every test
//! that installs one goes through [`window_gate`].

#![allow(clippy::unwrap_used)]

use dcfail::obs;
use dcfail::par;
use dcfail::synth::Scenario;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn window_gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds the scenario at `seed` and renders every paper artifact plus every
/// extension report into one string.
fn render_all(seed: u64) -> String {
    let ds = Scenario::paper()
        .seed(seed)
        .scale(0.03)
        .build()
        .into_dataset();
    let config = dcfail::report::experiments::RunConfig::with_seed(seed);
    let mut out = String::new();
    for (id, r) in dcfail::report::experiments::run_all(&ds, &config) {
        let _ = writeln!(out, "{id}:{}", r.text);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For arbitrary seeds, the report output with metrics enabled is
    /// byte-identical to the output with metrics disabled — pinned both
    /// sequentially (`DCFAIL_THREADS=1` equivalent) and at the default
    /// thread resolution.
    #[test]
    fn metrics_window_never_changes_report_output(seed in 0u64..1000) {
        let _gate = window_gate();
        for threads in [Some(1), None] {
            par::set_thread_override(threads);
            let baseline = render_all(seed);
            let handle = obs::ObsHandle::install().expect("gate serializes windows");
            let traced = render_all(seed);
            let report = handle.finish();
            par::set_thread_override(None);
            prop_assert_eq!(
                &traced,
                &baseline,
                "enabling metrics changed report output (threads {:?})",
                threads
            );
            // The window did observe the run it wrapped.
            prop_assert!(report.has_stage("synth.build"));
            prop_assert!(report.has_stage("report.run_all"));
        }
    }
}

/// Span paths nest across crate boundaries: stages of `Scenario::build`
/// record under the build span when they run on the same thread.
#[test]
fn span_paths_nest_across_crates() {
    let _gate = window_gate();
    let handle = obs::ObsHandle::install().expect("gate serializes windows");
    // Sequential, so nesting is deterministic (fanned-out work records at
    // the root of its worker thread).
    par::set_thread_override(Some(1));
    let _ds = Scenario::paper().seed(5).scale(0.02).build();
    par::set_thread_override(None);
    let report = handle.finish();
    let build = report.span("synth.build").expect("build span");
    assert_eq!(build.count, 1);
    for child in ["population", "telemetry", "incidents", "assemble"] {
        let path = format!("synth.build/{child}");
        let span = report
            .span(&path)
            .unwrap_or_else(|| panic!("{path} missing"));
        assert_eq!(span.count, 1, "{path}");
        assert!(span.total_ms <= build.total_ms, "{path} exceeds parent");
    }
    assert!(report.has_stage("placement"));
    assert!(report.has_stage("tickets"));
    assert!(report.counter("synth.machines").unwrap_or(0) > 0);
}

/// The JSON export parses as JSON and leads with the schema version.
#[test]
fn json_export_is_parseable_and_versioned() {
    let _gate = window_gate();
    let handle = obs::ObsHandle::install().expect("gate serializes windows");
    let _ds = Scenario::paper().seed(6).scale(0.02).build();
    let report = handle.finish();
    let json = report.to_json();
    assert!(json.starts_with("{\n  \"schema_version\": 1,"));
    let value: serde::Value = serde_json::from_str(&json).expect("export parses as JSON");
    let obj = match value {
        serde::Value::Object(map) => map,
        other => panic!("export is not a JSON object: {other:?}"),
    };
    for key in [
        "schema_version",
        "spans",
        "counters",
        "histograms",
        "warnings",
    ] {
        assert!(obj.iter().any(|(k, _)| k == key), "{key} missing");
    }
}
