//! Cross-crate pipeline tests: the full route from raw tickets to analyses,
//! exercising the crate boundaries the way a downstream user would.

#![allow(clippy::unwrap_used)]

use dcfail::analysis::{class_mix, ClassSource};
use dcfail::model::prelude::*;
use dcfail::stats::rng::StreamRng;
use dcfail::synth::Scenario;
use dcfail::tickets::classify::{apply_to_dataset, classify, PipelineConfig};
use dcfail::tickets::extract::{extract_crash_tickets, reconstruct_incidents};
use dcfail::tickets::store::TicketStore;

fn small_dataset(seed: u64) -> FailureDataset {
    Scenario::paper()
        .seed(seed)
        .scale(0.15)
        .build()
        .into_dataset()
}

#[test]
fn extraction_then_classification_then_analysis() {
    let mut ds = small_dataset(1);

    // Extraction finds most crash tickets with decent precision.
    let store = TicketStore::from_tickets(ds.tickets().to_vec());
    let (ids, report) = extract_crash_tickets(&store);
    assert!(!ids.is_empty());
    assert!(report.precision() > 0.8, "precision {}", report.precision());
    assert!(report.recall() > 0.8, "recall {}", report.recall());

    // Classification re-labels events; the class mix stays sane.
    let mut rng = StreamRng::new(2);
    let c = apply_to_dataset(&mut ds, PipelineConfig::default(), &mut rng);
    assert!(c.accuracy_vs_manual() > 0.75);
    let mix = class_mix::class_mix(&ds, ClassSource::Reported);
    assert!(mix.overall.other_share > 0.3 && mix.overall.other_share < 0.75);

    // Event labels and the checked classification agree one-to-one.
    for ev in ds.events() {
        assert_eq!(Some(ev.reported_class()), c.checked_label(ev.ticket()));
    }
}

#[test]
fn classifier_differs_from_monitor_labels_but_not_wildly() {
    let mut ds = small_dataset(3);
    let monitor_labels: Vec<FailureClass> = ds
        .events()
        .iter()
        .map(FailureEvent::reported_class)
        .collect();
    let mut rng = StreamRng::new(4);
    apply_to_dataset(&mut ds, PipelineConfig::default(), &mut rng);
    let pipeline_labels: Vec<FailureClass> = ds
        .events()
        .iter()
        .map(FailureEvent::reported_class)
        .collect();
    let agree = monitor_labels
        .iter()
        .zip(&pipeline_labels)
        .filter(|(a, b)| a == b)
        .count();
    let agreement = agree as f64 / monitor_labels.len() as f64;
    // Two independent imperfect labelers of the same text: they must agree
    // on most tickets but not be identical.
    assert!(agreement > 0.7, "agreement {agreement}");
    assert!(agreement < 1.0, "pipelines should not be identical");
}

#[test]
fn incident_reconstruction_approximates_ground_truth() {
    let ds = small_dataset(5);
    let store = TicketStore::from_tickets(ds.tickets().to_vec());
    let reconstructed = reconstruct_incidents(&store, MINUTE * 10);
    let truth = ds.incidents().len();
    // Time-proximity grouping should land within 2x of the true incident
    // count (it merges co-incident singletons and splits nothing).
    assert!(
        reconstructed.len() * 2 > truth && reconstructed.len() < truth * 2,
        "reconstructed {} vs truth {truth}",
        reconstructed.len()
    );
    // Every crash ticket lands in exactly one group.
    let grouped: usize = reconstructed.iter().map(|g| g.tickets.len()).sum();
    assert_eq!(grouped, ds.events().len());
}

#[test]
fn classification_is_reproducible_per_seed() {
    let ds = small_dataset(7);
    let crash: Vec<&Ticket> = ds.tickets().iter().filter(|t| t.is_crash()).collect();
    let a = classify(&crash, PipelineConfig::default(), &mut StreamRng::new(9));
    let b = classify(&crash, PipelineConfig::default(), &mut StreamRng::new(9));
    assert_eq!(a.labels(), b.labels());
    let c = classify(&crash, PipelineConfig::default(), &mut StreamRng::new(10));
    // A different seed may flip some cluster assignments...
    let _ = c;
}

#[test]
fn truth_vs_reported_views_stay_consistent() {
    let ds = small_dataset(11);
    let truth = class_mix::class_mix(&ds, ClassSource::Truth);
    let reported = class_mix::class_mix(&ds, ClassSource::Reported);
    // Total event counts agree regardless of the label source.
    assert_eq!(
        truth.overall.counts.iter().sum::<usize>(),
        reported.overall.counts.iter().sum::<usize>()
    );
    // Truth never contains "other".
    assert_eq!(truth.overall.counts[FailureClass::Other.index()], 0);
    assert!(reported.overall.counts[FailureClass::Other.index()] > 0);
}
