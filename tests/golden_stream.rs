//! Golden pin for the stream==batch contract: the streaming ingest engine
//! must keep producing the batch pipeline's exact figure bytes — at every
//! thread count — and both must keep producing today's bytes. If this test
//! fails after an intentional renderer or estimator change, re-derive the
//! digest with the instructions in the failure message.

#![allow(clippy::unwrap_used)]

use dcfail::model::prelude::*;
use dcfail::stream::{batch_digest, StreamConfig, StreamEngine};
use dcfail::synth::feed::dataset_feed;
use dcfail::synth::Scenario;

/// Pinned digest of the three streamed figures (fig8/fig9/fig10) at seed 42,
/// scale 0.02 — byte-identical to the batch renderers by construction.
const GOLDEN_STREAM: u64 = 0x1a1e6e0e415403cf;

fn build_dataset() -> FailureDataset {
    Scenario::paper()
        .seed(42)
        .scale(0.02)
        .build()
        .into_dataset()
}

fn stream_digest(dataset: &FailureDataset) -> u64 {
    let mut engine = StreamEngine::new(dataset.horizon(), StreamConfig::default());
    for ev in dataset_feed(dataset) {
        engine.ingest(ev).expect("canonical feed is never late");
    }
    engine.finish().digest()
}

/// One test fn, not one per thread count: the override is process-global, so
/// the sweep must be sequential (and must restore the ambient setting).
#[test]
fn stream_equals_batch_at_every_thread_count() {
    let ambient = dcfail::par::thread_override();
    for threads in [1, 2, 8] {
        dcfail::par::set_thread_override(Some(threads));
        let dataset = build_dataset();
        let streamed = stream_digest(&dataset);
        let batch = batch_digest(&dataset);
        assert_eq!(
            streamed, batch,
            "stream and batch figures diverged at {threads} threads"
        );
        assert_eq!(
            streamed, GOLDEN_STREAM,
            "streamed figure bytes at {threads} threads changed: digest \
             {streamed:#018x} != pinned {GOLDEN_STREAM:#018x}. If the change \
             is intentional, re-derive with `repro stream --scale 0.02 \
             --seed 42 --json` and update GOLDEN_STREAM in \
             tests/golden_stream.rs."
        );
    }
    dcfail::par::set_thread_override(ambient);
}
